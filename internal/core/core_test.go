package core

import (
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func flatEngine(t *testing.T, pts []object.Point, m object.Metric) *FlatEngine {
	t.Helper()
	e, err := NewFlatEngine(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func treeEngine(t *testing.T, pts []object.Point, m object.Metric) *TreeEngine {
	t.Helper()
	cfg := mtree.Config{Capacity: 8, Metric: m, Policy: mtree.MinOverlap}
	e, err := BuildTreeEngine(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func bothEngines(t *testing.T, pts []object.Point, m object.Metric) map[string]Engine {
	return map[string]Engine{
		"flat": flatEngine(t, pts, m),
		"tree": treeEngine(t, pts, m),
	}
}

// discAlgorithms enumerates every heuristic that must produce a valid
// r-DisC diverse subset.
func discAlgorithms() map[string]func(e Engine, r float64) *Solution {
	return map[string]func(e Engine, r float64) *Solution{
		"basic":        func(e Engine, r float64) *Solution { return BasicDisC(e, r, false) },
		"basic-pruned": func(e Engine, r float64) *Solution { return BasicDisC(e, r, true) },
		"grey-greedy":  func(e Engine, r float64) *Solution { return GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey}) },
		"grey-pruned": func(e Engine, r float64) *Solution {
			return GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey, Pruned: true})
		},
		"white-greedy": func(e Engine, r float64) *Solution { return GreedyDisC(e, r, GreedyOptions{Update: UpdateWhite}) },
		"white-pruned": func(e Engine, r float64) *Solution {
			return GreedyDisC(e, r, GreedyOptions{Update: UpdateWhite, Pruned: true})
		},
		"lazy-grey":  func(e Engine, r float64) *Solution { return GreedyDisC(e, r, GreedyOptions{Update: UpdateLazyGrey}) },
		"lazy-white": func(e Engine, r float64) *Solution { return GreedyDisC(e, r, GreedyOptions{Update: UpdateLazyWhite}) },
		"lazy-white-pruned": func(e Engine, r float64) *Solution {
			return GreedyDisC(e, r, GreedyOptions{Update: UpdateLazyWhite, Pruned: true})
		},
	}
}

func TestAllDisCAlgorithmsProduceValidSubsets(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}}
	radii := []float64{0.02, 0.05, 0.1, 0.3}
	for mi, m := range metrics {
		pts := randomPoints(400, 2, uint64(mi)*13+1)
		for engName, e := range bothEngines(t, pts, m) {
			for algName, alg := range discAlgorithms() {
				for _, r := range radii {
					s := alg(e, r)
					if err := VerifySolution(e, s); err != nil {
						t.Errorf("%s/%s/%s r=%g: %v", m.Name(), engName, algName, r, err)
					}
					if s.Size() == 0 {
						t.Errorf("%s/%s/%s r=%g: empty solution", m.Name(), engName, algName, r)
					}
				}
			}
		}
	}
}

func TestCoverageOnlyAlgorithms(t *testing.T) {
	pts := randomPoints(400, 2, 99)
	m := object.Euclidean{}
	for engName, e := range bothEngines(t, pts, m) {
		for _, r := range []float64{0.03, 0.08, 0.2} {
			for name, alg := range map[string]func(Engine, float64) *Solution{
				"greedy-c": GreedyC,
				"fast-c":   FastC,
			} {
				s := alg(e, r)
				if err := VerifyCoverageOnly(e, s); err != nil {
					t.Errorf("%s/%s r=%g: %v", engName, name, r, err)
				}
			}
		}
	}
}

// TestGreedyIdenticalAcrossEngines: with exact count maintenance and
// deterministic tie-breaking, the greedy selection depends only on
// distances, so the flat and tree engines must produce identical
// solutions — a strong cross-validation of the index.
func TestGreedyIdenticalAcrossEngines(t *testing.T) {
	pts := randomPoints(500, 2, 5)
	m := object.Euclidean{}
	for _, r := range []float64{0.03, 0.06, 0.12} {
		for _, upd := range []UpdateStrategy{UpdateGrey, UpdateWhite, UpdateLazyGrey, UpdateLazyWhite} {
			var ref []int
			for _, engName := range []string{"flat", "tree"} {
				e := bothEngines(t, pts, m)[engName]
				s := GreedyDisC(e, r, GreedyOptions{Update: upd})
				if ref == nil {
					ref = s.SortedIDs()
					continue
				}
				got := s.SortedIDs()
				if !equalInts(ref, got) {
					t.Errorf("update=%v r=%g: engines disagree: flat %d ids, tree %d ids", upd, r, len(ref), len(got))
				}
			}
		}
	}
}

// TestGreedyPrunedMatchesUnpruned: pruning changes which nodes are
// visited, never which objects are white, so the selected subset must be
// identical.
func TestGreedyPrunedMatchesUnpruned(t *testing.T) {
	pts := randomPoints(500, 2, 6)
	m := object.Euclidean{}
	for _, r := range []float64{0.04, 0.1} {
		a := GreedyDisC(treeEngine(t, pts, m), r, GreedyOptions{Update: UpdateGrey})
		b := GreedyDisC(treeEngine(t, pts, m), r, GreedyOptions{Update: UpdateGrey, Pruned: true})
		if !equalInts(a.SortedIDs(), b.SortedIDs()) {
			t.Errorf("r=%g: pruned selection differs from unpruned", r)
		}
		if b.Accesses >= a.Accesses {
			t.Errorf("r=%g: pruned accesses %d not below unpruned %d", r, b.Accesses, a.Accesses)
		}
	}
}

// TestGreyAndWhiteUpdatesAgree: both strategies maintain exact counts, so
// they must make identical selections.
func TestGreyAndWhiteUpdatesAgree(t *testing.T) {
	pts := randomPoints(600, 2, 7)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	for _, r := range []float64{0.03, 0.08} {
		a := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey})
		b := GreedyDisC(e, r, GreedyOptions{Update: UpdateWhite})
		if !equalInts(a.SortedIDs(), b.SortedIDs()) {
			t.Errorf("r=%g: grey/white update strategies disagree", r)
		}
	}
}

func TestGreedyNoLargerThanBasicOnAverage(t *testing.T) {
	// Greedy is a heuristic, not a guarantee, but across several seeds it
	// should never be substantially worse than arbitrary selection.
	m := object.Euclidean{}
	var basicTotal, greedyTotal int
	for seed := uint64(0); seed < 5; seed++ {
		pts := randomPoints(400, 2, seed+30)
		e := flatEngine(t, pts, m)
		basicTotal += BasicDisC(e, 0.05, false).Size()
		greedyTotal += GreedyDisC(e, 0.05, GreedyOptions{Update: UpdateGrey}).Size()
	}
	if greedyTotal > basicTotal {
		t.Errorf("greedy total %d larger than basic total %d", greedyTotal, basicTotal)
	}
}

func TestBuildCountsMatchQueryCounts(t *testing.T) {
	pts := randomPoints(400, 2, 44)
	m := object.Euclidean{}
	r := 0.07
	cfg := mtree.Config{Capacity: 8, Metric: m, Policy: mtree.MinOverlap}
	withCounts, err := BuildTreeEngineWithCounts(cfg, pts, r)
	if err != nil {
		t.Fatal(err)
	}
	counts, cr, ok := withCounts.InitialCounts()
	if !ok || cr != r {
		t.Fatalf("missing build counts (ok=%v r=%g)", ok, cr)
	}
	plain := flatEngine(t, pts, m)
	for id := range pts {
		want := len(plain.Neighbors(id, r))
		if counts[id] != want {
			t.Fatalf("object %d: build count %d, want %d", id, counts[id], want)
		}
	}
	// And the greedy run must match the recomputed-counts run exactly.
	a := GreedyDisC(withCounts, r, GreedyOptions{Update: UpdateGrey})
	b := GreedyDisC(treeEngine(t, pts, m), r, GreedyOptions{Update: UpdateGrey})
	if !equalInts(a.SortedIDs(), b.SortedIDs()) {
		t.Error("solutions differ between build-time and query-time counts")
	}
}

func TestSolutionBookkeeping(t *testing.T) {
	pts := randomPoints(300, 2, 70)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	s := GreedyDisC(e, 0.06, GreedyOptions{Update: UpdateGrey})
	if !s.DistBlackExact {
		t.Fatal("unpruned run should have exact DistBlack")
	}
	// DistBlack must equal the true distance to the closest selected
	// object for every covered object.
	for id := range pts {
		best := -1.0
		for _, b := range s.IDs {
			if id == b {
				best = 0
				break
			}
			d := m.Dist(pts[id], pts[b])
			if d <= s.Radius && (best < 0 || d < best) {
				best = d
			}
		}
		if best < 0 {
			t.Fatalf("object %d uncovered", id)
		}
		if diff := s.DistBlack[id] - best; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("object %d: DistBlack %g, want %g", id, s.DistBlack[id], best)
		}
	}
	if s.Contains(-1) || s.Contains(len(pts)) {
		t.Error("Contains accepted out-of-range id")
	}
	c := s.Clone()
	c.IDs[0] = -7
	if s.IDs[0] == -7 {
		t.Error("Clone shares IDs backing array")
	}
}

func TestRecomputeDistBlackAfterPrunedRun(t *testing.T) {
	pts := randomPoints(500, 2, 71)
	m := object.Euclidean{}
	e := treeEngine(t, pts, m)
	s := BasicDisC(e, 0.08, true)
	if s.DistBlackExact {
		t.Fatal("pruned run should mark DistBlack inexact")
	}
	RecomputeDistBlack(e, s)
	if !s.DistBlackExact {
		t.Fatal("RecomputeDistBlack did not mark exact")
	}
	for id := range pts {
		best := -1.0
		for _, b := range s.IDs {
			if id == b {
				best = 0
				break
			}
			d := m.Dist(pts[id], pts[b])
			if d <= s.Radius && (best < 0 || d < best) {
				best = d
			}
		}
		if diff := s.DistBlack[id] - best; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("object %d: DistBlack %g, want %g", id, s.DistBlack[id], best)
		}
	}
}

func TestFastCTradeOff(t *testing.T) {
	// Fast-C trades solution size for accesses: it must never cost more
	// node accesses than Greedy-C (its queries stop early), and its
	// solutions — though possibly larger — must stay valid r-C subsets
	// (verified in TestCoverageOnlyAlgorithms).
	pts := randomPoints(1500, 2, 90)
	m := object.Euclidean{}
	gc := GreedyC(treeEngine(t, pts, m), 0.05)
	fc := FastC(treeEngine(t, pts, m), 0.05)
	if fc.Accesses > gc.Accesses {
		t.Errorf("Fast-C accesses %d above Greedy-C %d", fc.Accesses, gc.Accesses)
	}
	if fc.Size() < gc.Size() {
		t.Errorf("Fast-C size %d below Greedy-C %d: early-stopped queries cannot shrink solutions", fc.Size(), gc.Size())
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{nil, nil, 0},
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1, 2}, []int{3, 4}, 1},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{[]int{1}, nil, 1},
	}
	for _, c := range cases {
		if got := JaccardIDs(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v,%v)=%g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestCheckDisCRejectsBadSubsets(t *testing.T) {
	pts := []object.Point{{0, 0}, {0.05, 0}, {1, 1}}
	m := object.Euclidean{}
	if err := CheckDisC(pts, m, []int{0, 2}, 0.1); err != nil {
		t.Errorf("valid subset rejected: %v", err)
	}
	if err := CheckDisC(pts, m, []int{0}, 0.1); err == nil {
		t.Error("uncovering subset accepted")
	}
	if err := CheckDisC(pts, m, []int{0, 1, 2}, 0.1); err == nil {
		t.Error("dependent subset accepted")
	}
	if err := CheckDisC(pts, m, []int{0, 0, 2}, 0.1); err == nil {
		t.Error("duplicate selection accepted")
	}
	if err := CheckDisC(pts, m, []int{5}, 0.1); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := CheckDisC(pts, m, nil, 0.1); err == nil {
		t.Error("empty subset accepted")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
