package core

import (
	"fmt"

	"github.com/discdiversity/disc/internal/object"
)

// CheckDisC verifies both conditions of Definition 1 for a candidate
// subset by direct distance computation (no index involved): every object
// must be within r of a selected object (coverage) and no two selected
// objects may be within r of each other (dissimilarity). It returns nil
// when the subset is r-DisC diverse.
func CheckDisC(pts []object.Point, m object.Metric, ids []int, r float64) error {
	if err := CheckCoverage(pts, m, ids, r); err != nil {
		return err
	}
	return CheckDissimilarity(pts, m, ids, r)
}

// CheckCoverage verifies only the coverage condition (r-C diversity).
func CheckCoverage(pts []object.Point, m object.Metric, ids []int, r float64) error {
	if len(pts) > 0 && len(ids) == 0 {
		return fmt.Errorf("core: empty subset cannot cover %d objects", len(pts))
	}
	sel := make([]object.Point, len(ids))
	for i, id := range ids {
		if id < 0 || id >= len(pts) {
			return fmt.Errorf("core: selected id %d out of range [0,%d)", id, len(pts))
		}
		sel[i] = pts[id]
	}
	for i, p := range pts {
		covered := false
		for _, s := range sel {
			if m.Dist(p, s) <= r {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("core: object %d is not covered at radius %g", i, r)
		}
	}
	return nil
}

// CheckDissimilarity verifies only the dissimilarity (independence)
// condition.
func CheckDissimilarity(pts []object.Point, m object.Metric, ids []int, r float64) error {
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("core: object %d selected twice", id)
		}
		seen[id] = true
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if d := m.Dist(pts[ids[i]], pts[ids[j]]); d <= r {
				return fmt.Errorf("core: selected objects %d and %d at distance %g ≤ %g", ids[i], ids[j], d, r)
			}
		}
	}
	return nil
}

// VerifySolution checks a solution against its engine: DisC invariants
// plus internal consistency of the color array and id list.
func VerifySolution(e Engine, s *Solution) error {
	pts := enginePoints(e)
	if len(s.Colors) != len(pts) {
		return fmt.Errorf("core: solution colors cover %d objects, engine has %d", len(s.Colors), len(pts))
	}
	blacks := 0
	for id, c := range s.Colors {
		switch c {
		case Black:
			blacks++
		case White:
			return fmt.Errorf("core: object %d left white", id)
		}
	}
	if blacks != len(s.IDs) {
		return fmt.Errorf("core: %d black objects but %d selected ids", blacks, len(s.IDs))
	}
	for _, id := range s.IDs {
		if s.Colors[id] != Black {
			return fmt.Errorf("core: selected id %d not colored black", id)
		}
	}
	return CheckDisC(pts, e.Metric(), s.IDs, s.Radius)
}

// VerifyCoverageOnly is VerifySolution for r-C subsets (Greedy-C, Fast-C),
// which do not promise independence.
func VerifyCoverageOnly(e Engine, s *Solution) error {
	pts := enginePoints(e)
	for id, c := range s.Colors {
		if c == White {
			return fmt.Errorf("core: object %d left white", id)
		}
	}
	return CheckCoverage(pts, e.Metric(), s.IDs, s.Radius)
}

func enginePoints(e Engine) []object.Point {
	pts := make([]object.Point, e.Size())
	for i := range pts {
		pts[i] = e.Point(i)
	}
	return pts
}
