package core

import "github.com/discdiversity/disc/internal/object"

// neighborsFunc is a buffer-reusing neighbourhood query: it appends the
// neighbours of id to dst and returns the extended slice.
type neighborsFunc func(dst []object.Neighbor, id int) []object.Neighbor

// GreedyC computes an r-C diverse subset: the coverage condition of
// Definition 1 without requiring independence. It modifies Greedy-DisC so
// that both white and grey objects are candidates, always selecting the
// object that covers the most uncovered objects (line 6 of Algorithm 1
// relaxed). The paper's pruning rule is not applicable because grey
// objects and nodes must stay reachable to keep their counts current.
func GreedyC(e Engine, r float64) *Solution {
	full := func(dst []object.Neighbor, id int) []object.Neighbor {
		return e.NeighborsAppend(dst, id, r)
	}
	return greedyCoverage(e, r, "Greedy-C", full, full)
}

// FastC is the cheaper r-C heuristic of Section 5.1: it behaves like
// GreedyC but answers every range query bottom-up, skipping fully covered
// (grey) subtrees is not needed; instead the climb stops at the first
// grey ancestor whose region contains the whole query ball ("the query
// stops climbing up the tree when the first grey internal node is met").
// Stopped queries may miss neighbours stored in distant leaves, which
// never breaks coverage — a missed white object simply stays white and is
// covered later — but can enlarge the result, exactly the trade-off the
// paper describes. The containment guard keeps the approximation from
// collapsing when the query ball is much larger than the local regions;
// see DESIGN.md ("Deliberate deviations") for a discussion of how our
// measurements compare with the paper's in-text Fast-C claims.
//
// On engines without bottom-up support FastC degrades to GreedyC.
func FastC(e Engine, r float64) *Solution {
	bu, hasBU := e.(BottomUpEngine)
	cov, hasCov := e.(CoverageEngine)
	if !hasBU || !hasCov {
		full := func(dst []object.Neighbor, id int) []object.Neighbor {
			return e.NeighborsAppend(dst, id, r)
		}
		return greedyCoverage(e, r, "Fast-C", full, full)
	}
	cov.StartCoverage(nil)
	q := func(dst []object.Neighbor, id int) []object.Neighbor {
		return bu.NeighborsBottomUpAppend(dst, id, r, true)
	}
	return greedyCoverage(e, r, "Fast-C", q, q)
}

// greedyCoverage is the shared loop of GreedyC and FastC. colorNeighbors
// retrieves the neighbourhood used to colour objects grey when a
// candidate is selected; updateNeighbors (possibly approximate) is used
// to maintain candidate counts. Both append into the run's scratch
// buffers.
func greedyCoverage(e Engine, r float64, name string, colorNeighbors, updateNeighbors neighborsFunc) *Solution {
	n := e.Size()
	s := newSolution(n, r, name)
	cov, hasCov := e.(CoverageEngine)
	start := e.Accesses()

	// nw[id] = number of *white* objects in N_r(id); every non-black
	// object is a candidate keyed by it.
	var sc queryScratch
	nw := initialWhiteCounts(e, r, &sc)
	h := newLazyHeap(n)
	for id, c := range nw {
		h.push(id, c)
	}

	whitesLeft := n
	// cover transitions an object out of the white state.
	cover := func(id int) {
		whitesLeft--
		if hasCov {
			cov.Cover(id)
		}
	}

	for whitesLeft > 0 {
		pc, ok := h.popValid(func(id, key int) bool {
			if s.Colors[id] == Black || key != nw[id] {
				return false
			}
			// A grey candidate covering nothing new is useless;
			// a white one still covers itself.
			return key > 0 || s.Colors[id] == White
		})
		if !ok {
			break // unreachable: every white stays valid in the heap
		}
		wasWhite := s.Colors[pc] == White
		s.selectBlack(pc)
		if wasWhite {
			cover(pc)
		}
		sc.ns = colorNeighbors(sc.ns[:0], pc)
		sc.grey = sc.grey[:0]
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
				sc.grey = append(sc.grey, nb)
				cover(nb.ID)
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}

		// Every object that left the white state (pc if it was white,
		// plus the newly greyed) decrements the count of each of its
		// non-black neighbours. pc's neighbourhood was just retrieved;
		// reuse it.
		if wasWhite {
			for _, nb := range sc.ns {
				if s.Colors[nb.ID] != Black {
					nw[nb.ID]--
					h.push(nb.ID, nw[nb.ID])
				}
			}
		}
		for _, gj := range sc.grey {
			sc.upd = updateNeighbors(sc.upd[:0], gj.ID)
			for _, nk := range sc.upd {
				if s.Colors[nk.ID] != Black {
					nw[nk.ID]--
					h.push(nk.ID, nw[nk.ID])
				}
			}
		}
	}

	// Greedy-C's full queries keep closest-black distances exact; Fast-C's
	// stopped queries may miss neighbours.
	s.DistBlackExact = name == "Greedy-C"
	s.Accesses = e.Accesses() - start
	return s
}
