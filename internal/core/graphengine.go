package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

// ParallelGraphEngine materialises the full r-coverage graph (the
// r-neighbourhood graph the paper reduces DisC diversity to) once, using
// every core, and then answers Neighbors in O(degree): the repeated range
// queries that dominate Basic-DisC and the Greedy-DisC family become
// array lookups. Construction shards the ID space across a worker pool;
// each worker runs concurrency-safe range queries against a shared
// bulk-loaded R-tree — reusing one query buffer, one box-clamp scratch
// and a chunked adjacency arena per worker, so the build allocates per
// arena block rather than per point — and writes its adjacency slots
// directly, so the merge is lock-free (one writer per slot).
//
// The graph is exact for any query radius up to the build radius
// (adjacency lists are filtered by distance); larger radii fall back to
// the underlying R-tree, so every Engine call stays correct at any
// radius — only the cost differs. Because |N_r(p)| is known for every p
// after the build, the engine also implements CountingEngine and makes
// Greedy-DisC's initialisation pass free; the packed white bitset lets
// it also implement WhiteCounter, refreshing white-neighbourhood counts
// with O(degree) bit tests.
//
// The access counter charges one unit per adjacency entry examined
// (minimum one per lookup), mirroring the flat engine's objects-examined
// measure; build and fallback queries charge R-tree node accesses.
// Like every other engine it is not safe for concurrent use after
// construction.
type ParallelGraphEngine struct {
	tree    *rtree.Tree
	radius  float64
	workers int
	adj     [][]object.Neighbor // sorted by id; excludes self
	counts  []int               // len(adj[i]), for CountingEngine
	scan    []int

	// clamp is the box-clamp scratch for single-threaded fallback
	// queries at radii beyond the build radius.
	clamp []float64

	accesses int64
	tracking bool
	white    bitset.Set
}

var (
	_ Engine         = (*ParallelGraphEngine)(nil)
	_ CoverageEngine = (*ParallelGraphEngine)(nil)
	_ CountingEngine = (*ParallelGraphEngine)(nil)
	_ WhiteCounter   = (*ParallelGraphEngine)(nil)
)

// BuildParallelGraphEngine builds the r-coverage graph of pts under m
// with the given worker count (<= 0 selects GOMAXPROCS). The build cost
// in R-tree node accesses is left on the counter, matching
// BuildTreeEngine; callers measuring query cost only should
// ResetAccesses first.
func BuildParallelGraphEngine(pts []object.Point, m object.Metric, r float64, workers int) (*ParallelGraphEngine, error) {
	tree, err := rtree.Build(pts, m, 0)
	if err != nil {
		return nil, fmt.Errorf("core: graph engine: %w", err)
	}
	scan := tree.ScanOrder()
	tree.ResetAccesses() // query costs are accounted on the engine
	return buildGraph(tree, scan, r, workers)
}

// Rebuild returns an engine over the same points with the adjacency
// lists rebuilt for a different radius, reusing the already packed
// R-tree (the tree depends only on points and metric). The R-tree is
// shared with the receiver, which must be discarded afterwards.
func (g *ParallelGraphEngine) Rebuild(r float64) (*ParallelGraphEngine, error) {
	return buildGraph(g.tree, g.scan, r, g.workers)
}

// arenaChunk is the adjacency-arena block size (entries) each build
// worker allocates at a time.
const arenaChunk = 1 << 14

// buildGraph materialises the coverage graph at radius r over an
// existing tree with a sharded worker pool.
func buildGraph(tree *rtree.Tree, scan []int, r float64, workers int) (*ParallelGraphEngine, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("core: graph engine: invalid radius %g", r)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := tree.Len()
	if workers > n {
		workers = n
	}
	g := &ParallelGraphEngine{
		tree:    tree,
		radius:  r,
		workers: workers,
		adj:     make([][]object.Neighbor, n),
		counts:  make([]int, n),
		scan:    scan,
		clamp:   make([]float64, tree.Dim()),
	}

	var total int64
	var wg sync.WaitGroup
	shard := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * shard
		hi := lo + shard
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var acc int64
			// Per-worker reusable buffers: every query lands in scratch
			// and is then packed into the current arena block, so the
			// loop allocates only when a block fills up (or scratch
			// grows to a new high-water mark).
			clamp := make([]float64, tree.Dim())
			scratch := make([]object.Neighbor, 0, 64)
			var arena []object.Neighbor
			for id := lo; id < hi; id++ {
				scratch = sortNeighbors(tree.AppendRangeQueryAroundInto(scratch[:0], id, r, &acc, clamp))
				if len(scratch) > cap(arena)-len(arena) {
					size := arenaChunk
					if len(scratch) > size {
						size = len(scratch)
					}
					arena = make([]object.Neighbor, 0, size)
				}
				start := len(arena)
				arena = append(arena, scratch...)
				g.adj[id] = arena[start:len(arena):len(arena)]
				g.counts[id] = len(scratch)
			}
			atomic.AddInt64(&total, acc)
		}(lo, hi)
	}
	wg.Wait()
	g.accesses = total
	return g, nil
}

// Radius returns the radius the coverage graph was built for.
func (g *ParallelGraphEngine) Radius() float64 { return g.radius }

// Workers returns the parallelism used during construction.
func (g *ParallelGraphEngine) Workers() int { return g.workers }

// Degree returns |N_r(id)| at the build radius.
func (g *ParallelGraphEngine) Degree(id int) int { return len(g.adj[id]) }

// Size implements Engine.
func (g *ParallelGraphEngine) Size() int { return g.tree.Len() }

// Metric implements Engine.
func (g *ParallelGraphEngine) Metric() object.Metric { return g.tree.Metric() }

// Point implements Engine.
func (g *ParallelGraphEngine) Point(id int) object.Point { return g.tree.Point(id) }

// charge records an adjacency lookup that examined n entries.
func (g *ParallelGraphEngine) charge(n int) {
	if n < 1 {
		n = 1
	}
	g.accesses += int64(n)
}

// Neighbors implements Engine. Radii up to the build radius are answered
// from the materialised graph; larger radii fall back to the R-tree.
func (g *ParallelGraphEngine) Neighbors(id int, r float64) []object.Neighbor {
	return g.NeighborsAppend(nil, id, r)
}

// NeighborsAppend implements Engine.
func (g *ParallelGraphEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	switch {
	case r == g.radius:
		g.charge(len(g.adj[id]))
		return append(dst, g.adj[id]...)
	case r < g.radius:
		g.charge(len(g.adj[id]))
		for _, nb := range g.adj[id] {
			if nb.Dist <= r {
				dst = append(dst, nb)
			}
		}
		return dst
	default:
		start := len(dst)
		dst = g.tree.AppendRangeQueryAroundInto(dst, id, r, &g.accesses, g.clamp)
		sortNeighbors(dst[start:])
		return dst
	}
}

// NeighborsOfPoint implements Engine via the R-tree (arbitrary points
// have no slot in the graph).
func (g *ParallelGraphEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	return sortNeighbors(g.tree.RangeQueryInto(q, r, &g.accesses))
}

// ScanOrder implements Engine via the STR leaf order captured at build
// time.
func (g *ParallelGraphEngine) ScanOrder() []int {
	return append([]int(nil), g.scan...)
}

// Accesses implements Engine.
func (g *ParallelGraphEngine) Accesses() int64 { return g.accesses }

// ResetAccesses implements Engine.
func (g *ParallelGraphEngine) ResetAccesses() { g.accesses = 0 }

// InitialCounts implements CountingEngine: the build already knows every
// neighbourhood size, so Greedy-DisC initialisation costs nothing.
func (g *ParallelGraphEngine) InitialCounts() ([]int, float64, bool) {
	return g.counts, g.radius, true
}

// StartCoverage implements CoverageEngine. The white set is mirrored
// into the R-tree so that fallback queries for radii beyond the build
// radius prune covered subtrees too.
func (g *ParallelGraphEngine) StartCoverage(white []bool) {
	if white == nil {
		g.white.Reset(g.tree.Len())
		g.white.Fill()
		g.tree.EnableTracking()
	} else {
		g.white.CopyBools(white)
		g.tree.ResetTracking(white)
	}
	g.tracking = true
}

// Cover implements CoverageEngine.
func (g *ParallelGraphEngine) Cover(id int) {
	if g.tracking && g.white.Test(id) {
		g.white.Clear(id)
		g.tree.Cover(id)
	}
}

// IsWhite implements CoverageEngine.
func (g *ParallelGraphEngine) IsWhite(id int) bool { return g.tracking && g.white.Test(id) }

// NeighborsWhite implements CoverageEngine: an adjacency scan that keeps
// only still-white neighbours.
func (g *ParallelGraphEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return g.NeighborsWhiteAppend(nil, id, r)
}

// NeighborsWhiteAppend implements CoverageEngine.
func (g *ParallelGraphEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !g.tracking {
		panic("core: NeighborsWhite without StartCoverage")
	}
	if r > g.radius {
		start := len(dst)
		dst = g.tree.AppendRangeQueryPrunedInto(dst, id, r, &g.accesses, g.clamp)
		sortNeighbors(dst[start:])
		return dst
	}
	g.charge(len(g.adj[id]))
	for _, nb := range g.adj[id] {
		if g.white.Test(nb.ID) && nb.Dist <= r {
			dst = append(dst, nb)
		}
	}
	return dst
}

// WhiteCount implements WhiteCounter: at radii covered by the
// materialised graph, |white ∩ N_r(id)| is a popcount-style sweep of
// packed bit tests over the adjacency list — no distance evaluation.
// No accesses are charged: the caller's fallback (direct metric
// evaluations in Greedy-DisC's White-update refresh) is likewise
// uncharged, keeping the paper-style access tables comparable across
// engines and strategies.
func (g *ParallelGraphEngine) WhiteCount(id int, r float64) (int, bool) {
	if !g.tracking || r > g.radius {
		return 0, false
	}
	cnt := 0
	if r == g.radius {
		for _, nb := range g.adj[id] {
			if g.white.Test(nb.ID) {
				cnt++
			}
		}
		return cnt, true
	}
	for _, nb := range g.adj[id] {
		if nb.Dist <= r && g.white.Test(nb.ID) {
			cnt++
		}
	}
	return cnt, true
}
