package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

// ParallelGraphEngine materialises the full r-coverage graph (the
// r-neighbourhood graph the paper reduces DisC diversity to) once, using
// every core, and then answers Neighbors in O(degree): the repeated range
// queries that dominate Basic-DisC and the Greedy-DisC family become
// array lookups.
//
// Construction picks one of three join substrates. A uniform-grid
// cell-pair ε-join (internal/grid) serves the metrics the grid supports
// (the Lp family — see grid.Supports) at moderate dimensionality:
// points are counting-sorted into cells of side r, each cell is joined
// with its forward neighbour cells only, and every candidate pair is
// evaluated once with both edge directions emitted — roughly half the
// distance evaluations of a per-point range query, with no tree at all,
// for an O(n + candidate pairs) build. Queries at radii beyond the
// build radius are answered exactly by multi-ring grid scans, so the
// grid path never touches an R-tree. Other coordinatewise-monotone
// metrics at moderate dimensionality shard the ID space across a worker
// pool running concurrency-safe range queries against a shared
// bulk-loaded R-tree, which then also backs beyond-radius queries.
// Everything else — non-metric distances (cosine, dot product) and
// dimensionality above GraphFlatJoinDim, where bucketing degenerates to
// a handful of cells and box pruning stops pruning — uses the batched
// flat all-pairs join (grid.FlatJoin), whose fused early-exit kernels
// and optional float32 pre-filter make the dense scan the fastest
// remaining option; its fallback queries are flat scans. Every
// substrate lands the adjacency in a CSR layout (one offsets array plus
// one packed, exactly sized neighbour array), so the steady-state
// memory is precisely the edge count and walking many adjacency lists
// scans two contiguous allocations.
//
// The graph is exact for any query radius up to the build radius
// (adjacency lists are filtered by distance); larger radii fall back to
// the substrate (grid scan or R-tree), so every Engine call stays
// correct at any radius — only the cost differs. Because |N_r(p)| is
// known for every p after the build, the engine also implements
// CountingEngine and makes Greedy-DisC's initialisation pass free; the
// packed white bitset lets it also implement WhiteCounter, refreshing
// white-neighbourhood counts with O(degree) bit tests.
//
// The access counter charges one unit per adjacency entry examined
// (minimum one per lookup), mirroring the flat engine's objects-examined
// measure; grid builds and grid fallback scans charge one unit per
// candidate examined, and R-tree builds and fallback queries charge
// R-tree node accesses. Like every other engine it is not safe for
// concurrent use after construction.
type ParallelGraphEngine struct {
	flat    *object.FlatDataset
	tree    *rtree.Tree   // substrate of the R-tree path; nil otherwise
	hash    *grid.Grid    // substrate of the grid path; nil otherwise
	flatsub bool          // flat-join substrate: tree and hash both nil
	scratch *grid.Scratch // grid-path scratch for beyond-radius ring scans
	radius  float64
	workers int
	csr     *grid.CSR // adjacency rows sorted by id; exclude self
	counts  []int     // csr.Degree(i), for CountingEngine
	scan    []int
	// comps caches the connected-component decomposition at the build
	// radius: it is a pure function of the CSR, so computing (or
	// installing from a snapshot) it once serves every later selection.
	comps *grid.Components

	// clamp is the box-clamp scratch for single-threaded R-tree fallback
	// queries at radii beyond the build radius.
	clamp []float64

	accesses int64
	tracking bool
	white    bitset.Set
}

var (
	_ Engine         = (*ParallelGraphEngine)(nil)
	_ CoverageEngine = (*ParallelGraphEngine)(nil)
	_ CountingEngine = (*ParallelGraphEngine)(nil)
	_ WhiteCounter   = (*ParallelGraphEngine)(nil)
)

// GraphFlatJoinDim is the dimensionality above which the coverage-graph
// build abandons spatial bucketing for the batched flat all-pairs join:
// cells-per-axis collapses toward 1, the ±1-ring enumeration approaches
// the full cell count squared, and R-tree boxes stop pruning, while the
// flat join's tiled pre-filtered scan keeps its per-candidate cost
// flat. Measured by the highdim experiment's crossover sweep (uniform
// cube, Euclidean, r=0.15, n=5000 — see BENCH_PR7.json): the grid join
// wins clearly through d=6, loses to the flat join from d=8 on, and is
// over 2x slower by d=12.
const GraphFlatJoinDim = 7

// BuildParallelGraphEngine builds the r-coverage graph of pts under m
// with the given worker count (<= 0 selects GOMAXPROCS). The build cost
// is left on the counter, matching BuildTreeEngine; callers measuring
// query cost only should ResetAccesses first.
func BuildParallelGraphEngine(pts []object.Point, m object.Metric, r float64, workers int) (*ParallelGraphEngine, error) {
	flat, err := object.Flatten(pts, m)
	if err != nil {
		return nil, fmt.Errorf("core: graph engine: %w", err)
	}
	return BuildParallelGraphEngineOn(flat, r, workers)
}

// BuildParallelGraphEngineOn builds the r-coverage graph over an
// existing flat dataset (of either precision), choosing the join
// substrate from the metric and dimensionality: the grid ε-join for
// grid-supported metrics up to GraphFlatJoinDim, sharded R-tree range
// queries for other coordinatewise-monotone metrics up to the same
// bound, and the batched flat all-pairs join otherwise. A Float32
// dataset accelerates the grid and flat substrates through its float32
// pre-filter; selections stay bit-identical to the float64 scan over
// the same (rounded) coordinates either way.
func BuildParallelGraphEngineOn(flat *object.FlatDataset, r float64, workers int) (*ParallelGraphEngine, error) {
	m := flat.Metric()
	_, monotone := m.(object.CoordinatewiseMonotone)
	switch {
	case grid.Supports(m) && flat.Dim() <= GraphFlatJoinDim:
		return buildGraph(flat, nil, nil, nil, r, workers, false)
	case monotone && flat.Dim() <= GraphFlatJoinDim:
		tree, err := rtree.Build(flat.Points(), m, 0)
		if err != nil {
			return nil, fmt.Errorf("core: graph engine: %w", err)
		}
		scan := tree.ScanOrder()
		tree.ResetAccesses() // query costs are accounted on the engine
		return buildGraph(tree.Flat(), tree, nil, scan, r, workers, false)
	default:
		return buildGraph(flat, nil, nil, nil, r, workers, true)
	}
}

// Rebuild returns an engine over the same points with the adjacency
// lists rebuilt for a different radius, reusing the radius-independent
// substrate: the packed R-tree always, and on the grid path the grid
// occupancy whenever the new radius still fits its cell side — so
// zooming in re-joins without re-bucketing and zooming out pays only an
// O(n) re-bucket. The substrate is shared with the receiver, which must
// be discarded afterwards.
func (g *ParallelGraphEngine) Rebuild(r float64) (*ParallelGraphEngine, error) {
	return buildGraph(g.flat, g.tree, g.hash, g.scan, r, g.workers, g.flatsub)
}

// arenaChunk is the adjacency-arena block size (entries) each R-tree
// build worker allocates at a time; the arenas are transient and
// compacted into the exactly-sized CSR when the workers finish.
const arenaChunk = 1 << 14

// buildGraph materialises the coverage graph at radius r: via sharded
// R-tree range queries when tree is non-nil, via the batched flat
// all-pairs join when flatsub is set, and via the grid ε-join otherwise
// (hash, when non-nil, is reused as long as its cell side suits r).
func buildGraph(flat *object.FlatDataset, tree *rtree.Tree, hash *grid.Grid, scan []int, r float64, workers int, flatsub bool) (*ParallelGraphEngine, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("core: graph engine: invalid radius %g", r)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := flat.Len()
	if workers > n {
		workers = n
	}
	g := &ParallelGraphEngine{
		flat:    flat,
		tree:    tree,
		radius:  r,
		workers: workers,
		scan:    scan,
	}

	switch {
	case flatsub:
		g.flatsub = true
		csr, examined, err := grid.FlatJoin(flat, r, workers)
		if err != nil {
			return nil, fmt.Errorf("core: graph engine: %w", err)
		}
		g.csr = csr
		g.accesses = examined
		// scan stays nil: the flat substrate has no locality structure,
		// so ScanOrder reports plain id order.
	case tree == nil:
		// Reuse the occupancy only while the cell side suits the new
		// radius: a much finer radius would turn the ±1-ring join into
		// a near-all-pairs scan, far costlier than the O(n) re-bucket
		// it saves (see grid.Suits). The bucketing radius itself is
		// always reused — on sparse data the cell-count cap coarsens
		// cells beyond Suits' bound and a re-bucket would reproduce the
		// same grid.
		if hash == nil || !(hash.Radius() == r || hash.Suits(r)) {
			var err error
			hash, err = grid.Build(flat, r)
			if err != nil {
				return nil, fmt.Errorf("core: graph engine: %w", err)
			}
			g.scan = nil // cell order changed with the bucketing
		}
		csr, examined, err := grid.Join(hash, r, workers)
		if err != nil {
			return nil, fmt.Errorf("core: graph engine: %w", err)
		}
		g.hash = hash
		g.scratch = grid.NewScratch(flat.Dim())
		g.csr = csr
		g.accesses = examined
		if g.scan == nil {
			g.scan = hash.ScanOrder()
		}
	default:
		g.clamp = make([]float64, tree.Dim())
		var err error
		g.csr, g.accesses, err = rtreeJoin(tree, r, workers)
		if err != nil {
			return nil, fmt.Errorf("core: graph engine: %w", err)
		}
	}
	g.counts = make([]int, n)
	for i := range g.counts {
		g.counts[i] = g.csr.Degree(i)
	}
	return g, nil
}

// rtreeJoin materialises the adjacency with one concurrency-safe R-tree
// range query per point, sharding the ID space across a worker pool.
// Each worker reuses one query buffer and one box-clamp scratch and
// packs results into a chunked arena, so the query loop allocates per
// arena block rather than per point; the arenas are then compacted into
// the exactly-sized CSR and released.
func rtreeJoin(tree *rtree.Tree, r float64, workers int) (*grid.CSR, int64, error) {
	n := tree.Len()
	adj := make([][]object.Neighbor, n) // transient: compacted below
	var total int64
	var wg sync.WaitGroup
	shard := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * shard
		hi := lo + shard
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var acc int64
			clamp := make([]float64, tree.Dim())
			scratch := make([]object.Neighbor, 0, 64)
			var arena []object.Neighbor
			for id := lo; id < hi; id++ {
				scratch = sortNeighbors(tree.AppendRangeQueryAroundInto(scratch[:0], id, r, &acc, clamp))
				if len(scratch) > cap(arena)-len(arena) {
					size := arenaChunk
					if len(scratch) > size {
						size = len(scratch)
					}
					arena = make([]object.Neighbor, 0, size)
				}
				start := len(arena)
				arena = append(arena, scratch...)
				adj[id] = arena[start:len(arena):len(arena)]
			}
			atomic.AddInt64(&total, acc)
		}(lo, hi)
	}
	wg.Wait()

	csr := &grid.CSR{Offsets: make([]int32, n+1)}
	var edges int64
	for id, row := range adj {
		edges += int64(len(row))
		if edges > math.MaxInt32 {
			return nil, 0, fmt.Errorf("coverage graph exceeds %d adjacency entries", math.MaxInt32)
		}
		csr.Offsets[id+1] = int32(edges)
	}
	csr.Nbrs = make([]object.Neighbor, edges)
	for id, row := range adj {
		copy(csr.Nbrs[csr.Offsets[id]:], row)
	}
	return csr, total, nil
}

// Radius returns the radius the coverage graph was built for.
func (g *ParallelGraphEngine) Radius() float64 { return g.radius }

// Workers returns the parallelism used during construction.
func (g *ParallelGraphEngine) Workers() int { return g.workers }

// Degree returns |N_r(id)| at the build radius.
func (g *ParallelGraphEngine) Degree(id int) int { return g.csr.Degree(id) }

// GridJoined reports whether the adjacency was built by the grid ε-join
// (as opposed to per-point R-tree queries or the flat join).
func (g *ParallelGraphEngine) GridJoined() bool { return g.hash != nil }

// FlatJoined reports whether the adjacency was built by the batched
// flat all-pairs join.
func (g *ParallelGraphEngine) FlatJoined() bool { return g.flatsub }

// Dataset exposes the engine's flat dataset (read-only by convention);
// the snapshot writer persists its storage.
func (g *ParallelGraphEngine) Dataset() *object.FlatDataset { return g.flat }

// Size implements Engine.
func (g *ParallelGraphEngine) Size() int { return g.flat.Len() }

// Metric implements Engine.
func (g *ParallelGraphEngine) Metric() object.Metric { return g.flat.Metric() }

// Point implements Engine.
func (g *ParallelGraphEngine) Point(id int) object.Point { return g.flat.Point(id) }

// charge records an adjacency lookup that examined n entries.
func (g *ParallelGraphEngine) charge(n int) {
	if n < 1 {
		n = 1
	}
	g.accesses += int64(n)
}

// Neighbors implements Engine. Radii up to the build radius are answered
// from the materialised graph; larger radii fall back to the substrate.
func (g *ParallelGraphEngine) Neighbors(id int, r float64) []object.Neighbor {
	return g.NeighborsAppend(nil, id, r)
}

// NeighborsAppend implements Engine.
func (g *ParallelGraphEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	switch {
	case r == g.radius:
		row := g.csr.Row(id)
		g.charge(len(row))
		return append(dst, row...)
	case r < g.radius:
		row := g.csr.Row(id)
		g.charge(len(row))
		for _, nb := range row {
			if nb.Dist <= r {
				dst = append(dst, nb)
			}
		}
		return dst
	case g.hash != nil:
		return g.hash.AppendRange(dst, g.flat.Row(id), r, id, &g.accesses, g.scratch)
	case g.flatsub:
		// Whole-dataset batched scan, charged like the flat engine.
		g.accesses += int64(g.flat.Len())
		return g.flat.AppendRange(dst, g.flat.Row(id), r, id)
	default:
		start := len(dst)
		dst = g.tree.AppendRangeQueryAroundInto(dst, id, r, &g.accesses, g.clamp)
		sortNeighbors(dst[start:])
		return dst
	}
}

// NeighborsOfPoint implements Engine via the substrate (arbitrary points
// have no slot in the graph).
func (g *ParallelGraphEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	switch {
	case g.hash != nil:
		return g.hash.AppendRange(nil, q, r, -1, &g.accesses, g.scratch)
	case g.flatsub:
		g.accesses += int64(g.flat.Len())
		return g.flat.AppendRange(nil, q, r, -1)
	default:
		return sortNeighbors(g.tree.RangeQueryInto(q, r, &g.accesses))
	}
}

// ScanOrder implements Engine: the STR leaf order on the R-tree path,
// cell order on the grid path — both locality-preserving, captured at
// build time — and plain id order on the flat-join substrate, which has
// no locality structure.
func (g *ParallelGraphEngine) ScanOrder() []int {
	if g.scan == nil {
		ids := make([]int, g.flat.Len())
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	return append([]int(nil), g.scan...)
}

// Accesses implements Engine.
func (g *ParallelGraphEngine) Accesses() int64 { return g.accesses }

// ResetAccesses implements Engine.
func (g *ParallelGraphEngine) ResetAccesses() { g.accesses = 0 }

// InitialCounts implements CountingEngine: the build already knows every
// neighbourhood size, so Greedy-DisC initialisation costs nothing.
func (g *ParallelGraphEngine) InitialCounts() ([]int, float64, bool) {
	return g.counts, g.radius, true
}

// StartCoverage implements CoverageEngine. On the R-tree path the white
// set is mirrored into the tree so that fallback queries for radii
// beyond the build radius prune covered subtrees too; the grid path
// filters its fallback scans with the bitset directly.
func (g *ParallelGraphEngine) StartCoverage(white []bool) {
	if white == nil {
		g.white.Reset(g.flat.Len())
		g.white.Fill()
		if g.tree != nil {
			g.tree.EnableTracking()
		}
	} else {
		g.white.CopyBools(white)
		if g.tree != nil {
			g.tree.ResetTracking(white)
		}
	}
	g.tracking = true
}

// Cover implements CoverageEngine.
func (g *ParallelGraphEngine) Cover(id int) {
	if g.tracking && g.white.Test(id) {
		g.white.Clear(id)
		if g.tree != nil {
			g.tree.Cover(id)
		}
	}
}

// IsWhite implements CoverageEngine.
func (g *ParallelGraphEngine) IsWhite(id int) bool { return g.tracking && g.white.Test(id) }

// NeighborsWhite implements CoverageEngine: an adjacency scan that keeps
// only still-white neighbours.
func (g *ParallelGraphEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return g.NeighborsWhiteAppend(nil, id, r)
}

// NeighborsWhiteAppend implements CoverageEngine.
func (g *ParallelGraphEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !g.tracking {
		panic("core: NeighborsWhite without StartCoverage")
	}
	if r > g.radius {
		switch {
		case g.hash != nil:
			// Multi-ring white-filtered cell scan; covered objects are
			// neither examined nor charged, matching the flat engine's
			// accounting (the graph path keeps no per-cell counts — the
			// fallback is cold, a bitset test per candidate suffices).
			return g.hash.AppendRangeWhite(dst, g.flat.Row(id), r, id, &g.white, nil, &g.accesses, g.scratch)
		case g.flatsub:
			return g.appendWhiteScan(dst, id, r)
		default:
			start := len(dst)
			dst = g.tree.AppendRangeQueryPrunedInto(dst, id, r, &g.accesses, g.clamp)
			sortNeighbors(dst[start:])
			return dst
		}
	}
	row := g.csr.Row(id)
	g.charge(len(row))
	for _, nb := range row {
		if g.white.Test(nb.ID) && nb.Dist <= r {
			dst = append(dst, nb)
		}
	}
	return dst
}

// appendWhiteScan is the flat substrate's white-filtered range scan:
// the fused threshold test per still-white candidate, with the exact
// recomputation on survivors — the same protocol as the flat engine's
// NeighborsWhiteAppend, and the same accounting (covered objects are
// neither examined nor charged).
func (g *ParallelGraphEngine) appendWhiteScan(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	k := g.flat.Kernel()
	rawR := k.RawThreshold(r)
	q := g.flat.Row(id)
	n := g.flat.Len()
	for j := 0; j < n; j++ {
		if !g.white.Test(j) || j == id {
			continue
		}
		g.accesses++
		row := g.flat.Row(j)
		if k.Within(q, row, rawR) {
			if d := k.Finish(k.Raw(row, q)); d <= r {
				dst = append(dst, object.Neighbor{ID: j, Dist: d})
			}
		}
	}
	return dst
}

// Components implements CoverageEngine. At the build radius the
// decomposition is one depth-first pass over the materialised CSR —
// charged like any adjacency walk, one access per entry examined — and
// is cached: it is a pure function of the graph, so later calls (every
// selection in component mode) return it for free, exactly like
// InitialCounts. A snapshot-loaded decomposition (InstallComponents)
// pre-fills the cache, which is what lets warm starts skip the pass
// entirely. Smaller radii are answered by a filtered, uncached pass;
// radii beyond the build radius fall back to the substrate's range
// queries.
func (g *ParallelGraphEngine) Components(r float64) *grid.Components {
	switch {
	case r == g.radius:
		if g.comps == nil {
			g.charge(len(g.csr.Nbrs))
			g.comps = grid.ComponentsOfCSR(g.csr, g.flat.Len(), r)
		}
		return g.comps
	case r < g.radius:
		g.charge(len(g.csr.Nbrs))
		return grid.ComponentsOfCSR(g.csr, g.flat.Len(), r)
	default:
		return componentsViaQueries(g, r)
	}
}

// CachedComponents returns the decomposition computed or installed for
// the build radius, nil when none has been derived yet. Snapshots
// persist it opportunistically through this accessor.
func (g *ParallelGraphEngine) CachedComponents() *grid.Components { return g.comps }

// AdjacencyCSR implements adjacencySource: the materialised graph serves
// the component-decomposed selection directly when the query radius is
// exactly the build radius.
func (g *ParallelGraphEngine) AdjacencyCSR(r float64) (*grid.CSR, bool) {
	if r == g.radius {
		return g.csr, true
	}
	return nil, false
}

// WhiteCount implements WhiteCounter: at radii covered by the
// materialised graph, |white ∩ N_r(id)| is a popcount-style sweep of
// packed bit tests over the adjacency list — no distance evaluation.
// No accesses are charged: the caller's fallback (direct metric
// evaluations in Greedy-DisC's White-update refresh) is likewise
// uncharged, keeping the paper-style access tables comparable across
// engines and strategies.
func (g *ParallelGraphEngine) WhiteCount(id int, r float64) (int, bool) {
	if !g.tracking || r > g.radius {
		return 0, false
	}
	row := g.csr.Row(id)
	cnt := 0
	if r == g.radius {
		for _, nb := range row {
			if g.white.Test(nb.ID) {
				cnt++
			}
		}
		return cnt, true
	}
	for _, nb := range row {
		if nb.Dist <= r && g.white.Test(nb.ID) {
			cnt++
		}
	}
	return cnt, true
}
