package core

import (
	"fmt"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// LocalResult describes the outcome of zooming locally around a single
// representative (paper Section 3, Figures 1(d) and 2): the rest of the
// solution is untouched, only the neighbourhood of the chosen object is
// re-diversified at the new radius.
type LocalResult struct {
	// Center is the representative the user zoomed into.
	Center int
	// LocalRadius is the radius now in effect inside the region.
	LocalRadius float64
	// Region lists the objects participating in the local operation.
	Region []int
	// Added are representatives introduced inside the region (zoom-in)
	// or at its boundary (zoom-out repair), in selection order.
	Added []int
	// Removed are previous representatives dropped by a local zoom-out.
	Removed []int
	// Final is the full updated representative set: the previous
	// solution with Removed taken out and Added appended.
	Final []int
	// Accesses is the engine cost consumed by the local operation.
	Accesses int64
}

// LocalZoomIn re-diversifies the neighbourhood N_r(center) of a selected
// object at a smaller radius rNew < r: objects in the region whose closest
// representative is farther than rNew become uncovered and new local
// representatives are chosen among them (greedily by white-neighbourhood
// size within the region when greedy is set, in scan order otherwise).
// Per the paper, the algorithm receives only the objects in N_r(center).
func LocalZoomIn(e Engine, prev *Solution, center int, rNew float64, greedy bool) (*LocalResult, error) {
	if err := checkZoomArgs(e, prev, rNew); err != nil {
		return nil, err
	}
	if rNew >= prev.Radius {
		return nil, fmt.Errorf("core: local zoom-in radius %g not smaller than %g", rNew, prev.Radius)
	}
	if !prev.Contains(center) {
		return nil, fmt.Errorf("core: local zoom-in: object %d is not a selected representative", center)
	}
	if !prev.DistBlackExact {
		RecomputeDistBlack(e, prev)
	}
	start := e.Accesses()

	region, inRegion := regionAround(e, center, prev.Radius)
	res := &LocalResult{Center: center, LocalRadius: rNew, Region: region}

	// Whites: region objects (other than the centre) not covered by any
	// representative at the new radius. Other representatives cannot be
	// inside the region (independence), but they may still cover part of
	// it from outside, which is why the global DistBlack is consulted.
	white := make(map[int]bool, len(region))
	for _, id := range region {
		if id != center && prev.DistBlack[id] > rNew {
			white[id] = true
		}
	}

	var buf []object.Neighbor
	neighborsInRegion := func(id int) []object.Neighbor {
		buf = e.NeighborsAppend(buf[:0], id, rNew)
		kept := buf[:0]
		for _, nb := range buf {
			if inRegion[nb.ID] {
				kept = append(kept, nb)
			}
		}
		return kept
	}
	selectLocal := func(pi int) {
		res.Added = append(res.Added, pi)
		delete(white, pi)
		for _, nb := range neighborsInRegion(pi) {
			delete(white, nb.ID)
		}
	}

	if greedy {
		nw := make(map[int]int, len(white))
		for id := range white {
			for _, nb := range neighborsInRegion(id) {
				if white[nb.ID] {
					nw[id]++
				}
			}
		}
		for len(white) > 0 {
			best, bestKey := -1, -1
			for id := range white {
				k := nw[id]
				if k > bestKey || (k == bestKey && id < best) {
					best, bestKey = id, k
				}
			}
			selectLocal(best)
			// Recompute keys among the survivors; the region is small
			// so direct distance checks suffice.
			m := e.Metric()
			for id := range nw {
				if !white[id] {
					delete(nw, id)
					continue
				}
				cnt := 0
				for other := range white {
					if other != id && m.Dist(e.Point(id), e.Point(other)) <= rNew {
						cnt++
					}
				}
				nw[id] = cnt
			}
		}
	} else {
		for _, pi := range e.ScanOrder() {
			if len(white) == 0 {
				break
			}
			if white[pi] {
				selectLocal(pi)
			}
		}
	}

	res.Final = mergeFinal(prev.IDs, nil, res.Added)
	res.Accesses = e.Accesses() - start
	return res, nil
}

// LocalZoomOut coarsens the solution around center at rNew > r: previous
// representatives within rNew of center are redundant at the larger local
// radius and are removed; objects near the region boundary that relied on
// a removed representative are re-covered at the original radius so the
// rest of the solution keeps its guarantees.
func LocalZoomOut(e Engine, prev *Solution, center int, rNew float64) (*LocalResult, error) {
	if err := checkZoomArgs(e, prev, rNew); err != nil {
		return nil, err
	}
	if rNew <= prev.Radius {
		return nil, fmt.Errorf("core: local zoom-out radius %g not larger than %g", rNew, prev.Radius)
	}
	if !prev.Contains(center) {
		return nil, fmt.Errorf("core: local zoom-out: object %d is not a selected representative", center)
	}
	if !prev.DistBlackExact {
		RecomputeDistBlack(e, prev)
	}
	start := e.Accesses()

	region, _ := regionAround(e, center, rNew)
	res := &LocalResult{Center: center, LocalRadius: rNew, Region: region}

	removed := make(map[int]bool)
	for _, id := range region {
		if id != center && prev.Contains(id) {
			removed[id] = true
			res.Removed = append(res.Removed, id)
		}
	}
	sort.Ints(res.Removed)
	if len(removed) == 0 {
		res.Final = mergeFinal(prev.IDs, nil, nil)
		res.Accesses = e.Accesses() - start
		return res, nil
	}

	// Boundary repair: objects whose only representative within the
	// original radius was removed become uncovered unless the centre now
	// covers them at rNew. Cover them greedily at the original radius.
	kept := make(map[int]bool, len(prev.IDs))
	for _, id := range prev.IDs {
		if !removed[id] {
			kept[id] = true
		}
	}
	uncovered := make(map[int]bool)
	m := e.Metric()
	var buf []object.Neighbor
	for _, b := range res.Removed {
		buf = e.NeighborsAppend(buf[:0], b, prev.Radius)
		for _, nb := range buf {
			if kept[nb.ID] || uncovered[nb.ID] {
				continue
			}
			if m.Dist(e.Point(nb.ID), e.Point(center)) <= rNew {
				continue // absorbed by the enlarged centre
			}
			if covered := anyWithin(e, kept, nb.ID, prev.Radius); !covered {
				uncovered[nb.ID] = true
			}
		}
	}
	for len(uncovered) > 0 {
		// Deterministic: smallest id first.
		pi := -1
		for id := range uncovered {
			if pi == -1 || id < pi {
				pi = id
			}
		}
		res.Added = append(res.Added, pi)
		kept[pi] = true
		delete(uncovered, pi)
		buf = e.NeighborsAppend(buf[:0], pi, prev.Radius)
		for _, nb := range buf {
			delete(uncovered, nb.ID)
		}
	}

	res.Final = mergeFinal(prev.IDs, removed, res.Added)
	res.Accesses = e.Accesses() - start
	return res, nil
}

// regionAround returns N_r(center) ∪ {center} as a sorted id slice plus a
// membership map.
func regionAround(e Engine, center int, r float64) ([]int, map[int]bool) {
	ns := e.Neighbors(center, r)
	region := make([]int, 0, len(ns)+1)
	inRegion := make(map[int]bool, len(ns)+1)
	region = append(region, center)
	inRegion[center] = true
	for _, nb := range ns {
		region = append(region, nb.ID)
		inRegion[nb.ID] = true
	}
	sort.Ints(region)
	return region, inRegion
}

// anyWithin reports whether any kept representative lies within r of id.
// It checks by direct distance: the kept set is small.
func anyWithin(e Engine, kept map[int]bool, id int, r float64) bool {
	m := e.Metric()
	p := e.Point(id)
	for b := range kept {
		if m.Dist(p, e.Point(b)) <= r {
			return true
		}
	}
	return false
}

// mergeFinal builds the updated representative list: previous ids minus
// removed, then added, preserving order.
func mergeFinal(prevIDs []int, removed map[int]bool, added []int) []int {
	final := make([]int, 0, len(prevIDs)+len(added))
	for _, id := range prevIDs {
		if removed == nil || !removed[id] {
			final = append(final, id)
		}
	}
	final = append(final, added...)
	return final
}
