package core

import (
	"math"
	"testing"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// TestEngineConformanceComponents: every engine must return the
// identical canonical decomposition — the flat engine's query-derived
// labeling is the reference — at radii below, at and above the
// graph/grid build radius.
func TestEngineConformanceComponents(t *testing.T) {
	pts := randomPoints(300, 2, 91)
	m := object.Euclidean{}
	for _, r := range []float64{0.04, 0.2, 0.35} {
		var ref *grid.Components
		for name, e := range allEngines(t, pts, m) {
			cov, ok := e.(CoverageEngine)
			if !ok {
				t.Fatalf("%s: expected CoverageEngine", name)
			}
			got := cov.Components(r)
			if ref == nil {
				ref = got
				continue
			}
			if got.Count != ref.Count {
				t.Fatalf("r=%g %s: %d components, reference has %d", r, name, got.Count, ref.Count)
			}
			for id := range ref.Label {
				if got.Label[id] != ref.Label[id] {
					t.Fatalf("r=%g %s: point %d labeled %d, reference %d", r, name, id, got.Label[id], ref.Label[id])
				}
			}
		}
	}
}

// TestGraphEngineComponentsCached: the coverage-graph engine must cache
// the decomposition at its build radius (same pointer, no extra
// accesses) and answer other radii without touching the cache.
func TestGraphEngineComponentsCached(t *testing.T) {
	pts := randomPoints(250, 2, 92)
	g, err := BuildParallelGraphEngine(pts, object.Euclidean{}, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.CachedComponents() != nil {
		t.Fatalf("decomposition cached before first use")
	}
	first := g.Components(0.1)
	if g.CachedComponents() != first {
		t.Fatalf("build-radius decomposition not cached")
	}
	g.ResetAccesses()
	if g.Components(0.1) != first {
		t.Fatalf("cache miss on second call")
	}
	if g.Accesses() != 0 {
		t.Fatalf("cached call charged %d accesses", g.Accesses())
	}
	smaller := g.Components(0.05)
	if smaller == first {
		t.Fatalf("sub-radius decomposition served from the build-radius cache")
	}
	if smaller.Count < first.Count {
		t.Fatalf("shrinking the radius merged components (%d -> %d)", first.Count, smaller.Count)
	}
}

// TestGreedyComponentsMatchesGlobal: the component-decomposed selection
// must pick exactly the global greedy's subset — per engine, per update
// strategy (including the lazy-white fallback), per radius — and every
// solution must satisfy Definition 1.
func TestGreedyComponentsMatchesGlobal(t *testing.T) {
	pts := randomPoints(400, 2, 93)
	m := object.Euclidean{}
	strategies := []UpdateStrategy{UpdateGrey, UpdateWhite, UpdateLazyGrey, UpdateLazyWhite}
	for _, r := range []float64{0.03, 0.08} {
		for name, e := range allEngines(t, pts, m) {
			for _, upd := range strategies {
				opts := GreedyOptions{Update: upd, Pruned: true}
				want := GreedyDisC(e, r, opts)
				got := GreedyDisCComponents(e, r, opts, 2)
				if !equalInts(want.SortedIDs(), got.SortedIDs()) {
					t.Errorf("%s r=%g %v: component selection differs from global", name, r, upd)
				}
				if err := VerifySolution(e, got); err != nil {
					t.Errorf("%s r=%g %v: %v", name, r, upd, err)
				}
			}
		}
	}
}

// TestGreedyComponentsDeterministicAcrossWorkers: the full solution —
// selection order included — must be bit-identical for every worker
// count, on every engine.
func TestGreedyComponentsDeterministicAcrossWorkers(t *testing.T) {
	pts := randomPoints(350, 3, 94)
	m := object.Manhattan{}
	const r = 0.12
	opts := GreedyOptions{Update: UpdateGrey, Pruned: true}
	for name, e := range allEngines(t, pts, m) {
		ref := GreedyDisCComponents(e, r, opts, 1)
		for _, workers := range []int{2, 3, 8} {
			got := GreedyDisCComponents(e, r, opts, workers)
			if !equalInts(ref.IDs, got.IDs) {
				t.Errorf("%s workers=%d: selection order differs from workers=1", name, workers)
			}
			for id := range ref.Colors {
				if ref.Colors[id] != got.Colors[id] {
					t.Errorf("%s workers=%d: color of %d differs", name, workers, id)
					break
				}
			}
			for id := range ref.DistBlack {
				if ref.DistBlack[id] != got.DistBlack[id] {
					t.Errorf("%s workers=%d: DistBlack of %d differs", name, workers, id)
					break
				}
			}
			if ref.Accesses != got.Accesses {
				t.Errorf("%s workers=%d: accesses %d differ from workers=1's %d", name, workers, got.Accesses, ref.Accesses)
			}
		}
	}
}

// TestGreedyComponentsAccessParity: with the decomposition pre-cached,
// the component-mode selection on the coverage-graph engine must charge
// exactly what the global pruned run charges — the fast paths only
// short-circuit work, never the accounting.
func TestGreedyComponentsAccessParity(t *testing.T) {
	pts := randomPoints(500, 2, 95)
	const r = 0.05
	g, err := BuildParallelGraphEngine(pts, object.Euclidean{}, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Components(r) // populate the cache outside the measured runs
	opts := GreedyOptions{Update: UpdateGrey, Pruned: true}
	g.ResetAccesses()
	global := GreedyDisC(g, r, opts)
	g.ResetAccesses()
	comp := GreedyDisCComponents(g, r, opts, 1)
	if global.Accesses != comp.Accesses {
		t.Fatalf("component run charged %d accesses, global %d", comp.Accesses, global.Accesses)
	}
}

// TestGreedyComponentsExactDistBlack: component solutions promise exact
// closest-black distances; cross-check against the post-processing
// recomputation.
func TestGreedyComponentsExactDistBlack(t *testing.T) {
	pts := randomPoints(300, 2, 96)
	e := flatEngine(t, pts, object.Euclidean{})
	const r = 0.07
	s := GreedyDisCComponents(e, r, GreedyOptions{Update: UpdateGrey, Pruned: true}, 2)
	if !s.DistBlackExact {
		t.Fatalf("component solution does not report exact DistBlack")
	}
	check := s.Clone()
	RecomputeDistBlack(e, check)
	for id := range s.DistBlack {
		if s.DistBlack[id] != check.DistBlack[id] {
			t.Fatalf("DistBlack[%d] = %g, recomputation says %g", id, s.DistBlack[id], check.DistBlack[id])
		}
	}
}

// TestGreedyComponentsFastPaths: a crafted universe of one singleton,
// one pair and one triangle-plus-leaf component exercises every
// short-circuit; the selections and colors are known in closed form.
func TestGreedyComponentsFastPaths(t *testing.T) {
	pts := []object.Point{
		{0.0, 0.0},  // 0: singleton
		{0.5, 0.5},  // 1: pair with 2
		{0.5, 0.55}, // 2
		{0.9, 0.1},  // 3: chain 3-4-5, 4 in the middle
		{0.9, 0.18}, // 4
		{0.9, 0.26}, // 5
	}
	const r = 0.1
	e := flatEngine(t, pts, object.Euclidean{})
	s := GreedyDisCComponents(e, r, GreedyOptions{Update: UpdateGrey, Pruned: true}, 3)
	// Components: {0}, {1,2}, {3,4,5}. Singleton picks 0; the pair picks
	// min id 1; the chain picks its middle 4 (covers two).
	if !equalInts(s.IDs, []int{0, 1, 4}) {
		t.Fatalf("selected %v, want [0 1 4]", s.IDs)
	}
	wantColors := []Color{Black, Black, Grey, Grey, Black, Grey}
	for id, c := range wantColors {
		if s.Colors[id] != c {
			t.Fatalf("color of %d is %v, want %v", id, s.Colors[id], c)
		}
	}
	if err := VerifySolution(e, s); err != nil {
		t.Fatal(err)
	}
	if s.DistBlack[2] != e.Metric().Dist(pts[1], pts[2]) {
		t.Fatalf("pair grey distance %g", s.DistBlack[2])
	}
	if math.IsInf(s.DistBlack[3], 1) || math.IsInf(s.DistBlack[5], 1) {
		t.Fatalf("chain greys left without closest-black distances")
	}
}

// TestInstallComponentsRejectsMergedSingletons: labels that merge two
// true singleton components pass the structural checks but must be
// rejected at install time — otherwise the two-member fast path would
// dereference an empty adjacency row at selection time.
func TestInstallComponentsRejectsMergedSingletons(t *testing.T) {
	pts := []object.Point{
		{0.0, 0.0}, // singleton
		{0.5, 0.5}, // singleton
		{0.9, 0.1}, // pair with 3
		{0.9, 0.15},
	}
	const r = 0.1
	g, err := BuildParallelGraphEngine(pts, object.Euclidean{}, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	// True decomposition: [0, 1, 2, 2]. Merge the two singletons.
	if err := g.InstallComponents([]int32{0, 0, 1, 1}, 2); err == nil {
		t.Fatal("merged singleton labels accepted by InstallComponents")
	}
	if err := g.InstallComponents([]int32{0, 1, 2, 2}, 3); err != nil {
		t.Fatalf("genuine labels rejected: %v", err)
	}
}

// TestChunkComponentsBounds: chunk bounds must partition the component
// range contiguously for any worker count, including more workers than
// components.
func TestChunkComponentsBounds(t *testing.T) {
	pts := randomPoints(220, 2, 97)
	const r = 0.06
	g, err := BuildParallelGraphEngine(pts, object.Euclidean{}, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp := g.Components(r)
	csr, ok := g.AdjacencyCSR(r)
	if !ok {
		t.Fatal("no adjacency at build radius")
	}
	for _, workers := range []int{1, 2, 5, comp.Count, comp.Count + 7} {
		w := workers
		if w > comp.Count {
			w = comp.Count
		}
		bounds := chunkComponents(comp, csr, w)
		if bounds[0] != 0 || bounds[len(bounds)-1] != comp.Count {
			t.Fatalf("workers=%d: bounds %v do not span [0,%d]", workers, bounds, comp.Count)
		}
		if len(bounds)-1 > w {
			t.Fatalf("workers=%d: %d chunks", workers, len(bounds)-1)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("workers=%d: empty or reversed chunk in %v", workers, bounds)
			}
		}
	}
}

// TestGreedyComponentsUnprunedNaming: the solution must carry the
// component-mode marker so experiment tables can tell the paths apart.
func TestGreedyComponentsUnprunedNaming(t *testing.T) {
	pts := randomPoints(120, 2, 98)
	e := flatEngine(t, pts, object.Euclidean{})
	s := GreedyDisCComponents(e, 0.1, GreedyOptions{Update: UpdateGrey, Pruned: true}, 1)
	if s.Algorithm != "Grey-Greedy-DisC (Pruned, Components)" {
		t.Fatalf("algorithm name %q", s.Algorithm)
	}
	s = GreedyDisCComponents(e, 0.1, GreedyOptions{Update: UpdateGrey}, 1)
	if s.Algorithm != "Grey-Greedy-DisC (Components)" {
		t.Fatalf("algorithm name %q", s.Algorithm)
	}
}
