package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/discdiversity/disc/internal/object"
)

func TestWeightedGreedyDisCIsValidAndHeavy(t *testing.T) {
	pts := randomPoints(400, 2, 50)
	m := object.Euclidean{}
	rng := rand.New(rand.NewPCG(3, 3))
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = rng.Float64()
	}
	for engName, e := range bothEngines(t, pts, m) {
		for _, r := range []float64{0.05, 0.1, 0.2} {
			s, err := WeightedGreedyDisC(e, r, weights)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifySolution(e, s); err != nil {
				t.Errorf("%s r=%g: %v", engName, r, err)
			}
			// The weighted pick must carry at least the total weight of
			// the plain greedy solution's... not guaranteed in general,
			// but it must beat the *reverse*-weight ordering.
			inv := make([]float64, len(weights))
			for i, w := range weights {
				inv[i] = -w
			}
			worst, err := WeightedGreedyDisC(e, r, inv)
			if err != nil {
				t.Fatal(err)
			}
			heavyAvg := TotalWeight(s, weights) / float64(s.Size())
			lightAvg := TotalWeight(worst, weights) / float64(worst.Size())
			if heavyAvg <= lightAvg {
				t.Errorf("%s r=%g: weight-greedy average %g not above reverse ordering's %g",
					engName, r, heavyAvg, lightAvg)
			}
		}
	}
}

func TestWeightedGreedyDisCFirstPickIsHeaviest(t *testing.T) {
	pts := randomPoints(100, 2, 51)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = float64(i)
	}
	s, err := WeightedGreedyDisC(e, 0.1, weights)
	if err != nil {
		t.Fatal(err)
	}
	if s.IDs[0] != len(pts)-1 {
		t.Errorf("first pick %d, want heaviest object %d", s.IDs[0], len(pts)-1)
	}
}

func TestWeightedGreedyDisCValidation(t *testing.T) {
	pts := randomPoints(10, 2, 52)
	e := flatEngine(t, pts, object.Euclidean{})
	if _, err := WeightedGreedyDisC(e, 0.1, make([]float64, 3)); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func TestMultiRadiusDisCIsValid(t *testing.T) {
	pts := randomPoints(300, 2, 53)
	m := object.Euclidean{}
	rng := rand.New(rand.NewPCG(4, 4))
	radii := make([]float64, len(pts))
	for i := range radii {
		radii[i] = 0.02 + 0.1*rng.Float64()
	}
	for engName, e := range bothEngines(t, pts, m) {
		for _, greedy := range []bool{false, true} {
			s, err := MultiRadiusDisC(e, radii, greedy)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckMultiRadiusDisC(pts, m, s.IDs, radii); err != nil {
				t.Errorf("%s greedy=%v: %v", engName, greedy, err)
			}
		}
	}
}

func TestMultiRadiusUniformEqualsPlainDisC(t *testing.T) {
	// With identical radii the generalised problem degenerates to plain
	// DisC; the greedy variant must match Greedy-DisC exactly.
	pts := randomPoints(300, 2, 54)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	r := 0.08
	radii := make([]float64, len(pts))
	for i := range radii {
		radii[i] = r
	}
	multi, err := MultiRadiusDisC(e, radii, true)
	if err != nil {
		t.Fatal(err)
	}
	plain := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey})
	if !equalInts(multi.SortedIDs(), plain.SortedIDs()) {
		t.Error("uniform multi-radius result differs from plain Greedy-DisC")
	}
}

func TestMultiRadiusSmallRadiusGetsMoreRepresentatives(t *testing.T) {
	// Relevance via radii: halving the radii in the left half of the
	// space must increase the number of representatives there.
	pts := randomPoints(600, 2, 55)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	uniform := make([]float64, len(pts))
	focused := make([]float64, len(pts))
	for i, p := range pts {
		uniform[i] = 0.1
		if p[0] < 0.5 {
			focused[i] = 0.04
		} else {
			focused[i] = 0.1
		}
	}
	count := func(radii []float64) int {
		s, err := MultiRadiusDisC(e, radii, true)
		if err != nil {
			t.Fatal(err)
		}
		left := 0
		for _, id := range s.IDs {
			if pts[id][0] < 0.5 {
				left++
			}
		}
		return left
	}
	if lu, lf := count(uniform), count(focused); lf <= lu {
		t.Errorf("focused radii left-half representatives %d not above uniform %d", lf, lu)
	}
}

func TestMultiRadiusValidation(t *testing.T) {
	pts := randomPoints(10, 2, 56)
	e := flatEngine(t, pts, object.Euclidean{})
	if _, err := MultiRadiusDisC(e, make([]float64, 3), true); err == nil {
		t.Error("wrong radii count accepted")
	}
	bad := make([]float64, len(pts))
	bad[0] = -1
	if _, err := MultiRadiusDisC(e, bad, true); err == nil {
		t.Error("negative radius accepted")
	}
	if err := CheckMultiRadiusDisC(pts, object.Euclidean{}, []int{0}, make([]float64, 3)); err == nil {
		t.Error("check with wrong radii count accepted")
	}
}

// Property test: random weights always yield valid DisC subsets.
func TestWeightedQuickProperty(t *testing.T) {
	pts := randomPoints(150, 2, 57)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		weights := make([]float64, len(pts))
		for i := range weights {
			weights[i] = rng.Float64() * 10
		}
		s, err := WeightedGreedyDisC(e, 0.1, weights)
		if err != nil {
			return false
		}
		return CheckDisC(pts, m, s.IDs, 0.1) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
