package core

import (
	"fmt"

	"github.com/discdiversity/disc/internal/object"
)

// FlatEngine answers neighbourhood queries by scanning the whole point
// set. It is the exact reference implementation the M-tree engine is
// validated against, and is also the right choice for small inputs where
// building an index would dominate. Its access counter counts objects
// examined, so pruning (skipping covered objects) is visible in the cost
// the same way skipped subtrees are for the tree engine.
type FlatEngine struct {
	pts      []object.Point
	metric   object.Metric
	accesses int64
	white    []bool
	tracking bool
}

var (
	_ Engine         = (*FlatEngine)(nil)
	_ CoverageEngine = (*FlatEngine)(nil)
)

// NewFlatEngine creates a flat engine over pts. The slice is not copied
// and must not be mutated while the engine is in use.
func NewFlatEngine(pts []object.Point, m object.Metric) (*FlatEngine, error) {
	if _, err := object.ValidatePoints(pts); err != nil {
		return nil, fmt.Errorf("core: flat engine: %w", err)
	}
	if m == nil {
		return nil, fmt.Errorf("core: flat engine: nil metric")
	}
	return &FlatEngine{pts: pts, metric: m}, nil
}

// Size implements Engine.
func (f *FlatEngine) Size() int { return len(f.pts) }

// Metric implements Engine.
func (f *FlatEngine) Metric() object.Metric { return f.metric }

// Point implements Engine.
func (f *FlatEngine) Point(id int) object.Point { return f.pts[id] }

// Neighbors implements Engine by scanning every object.
func (f *FlatEngine) Neighbors(id int, r float64) []object.Neighbor {
	q := f.pts[id]
	var out []object.Neighbor
	for j, p := range f.pts {
		f.accesses++
		if j == id {
			continue
		}
		if d := f.metric.Dist(q, p); d <= r {
			out = append(out, object.Neighbor{ID: j, Dist: d})
		}
	}
	return out
}

// NeighborsOfPoint implements Engine.
func (f *FlatEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	var out []object.Neighbor
	for j, p := range f.pts {
		f.accesses++
		if d := f.metric.Dist(q, p); d <= r {
			out = append(out, object.Neighbor{ID: j, Dist: d})
		}
	}
	return out
}

// ScanOrder implements Engine; the flat engine has no locality structure,
// so the order is plain id order.
func (f *FlatEngine) ScanOrder() []int {
	ids := make([]int, len(f.pts))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Accesses implements Engine.
func (f *FlatEngine) Accesses() int64 { return f.accesses }

// ResetAccesses implements Engine.
func (f *FlatEngine) ResetAccesses() { f.accesses = 0 }

// StartCoverage implements CoverageEngine.
func (f *FlatEngine) StartCoverage(white []bool) {
	f.white = make([]bool, len(f.pts))
	if white == nil {
		for i := range f.white {
			f.white[i] = true
		}
	} else {
		copy(f.white, white)
	}
	f.tracking = true
}

// Cover implements CoverageEngine.
func (f *FlatEngine) Cover(id int) {
	if f.tracking {
		f.white[id] = false
	}
}

// IsWhite implements CoverageEngine.
func (f *FlatEngine) IsWhite(id int) bool { return f.tracking && f.white[id] }

// NeighborsWhite implements CoverageEngine. Covered objects are skipped
// and, analogously to grey M-tree subtrees, not charged as accesses.
func (f *FlatEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	if !f.tracking {
		panic("core: NeighborsWhite without StartCoverage")
	}
	q := f.pts[id]
	var out []object.Neighbor
	for j, p := range f.pts {
		if !f.white[j] || j == id {
			continue
		}
		f.accesses++
		if d := f.metric.Dist(q, p); d <= r {
			out = append(out, object.Neighbor{ID: j, Dist: d})
		}
	}
	return out
}
