package core

import (
	"fmt"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// FlatEngine answers neighbourhood queries by scanning the whole point
// set. It is the exact reference implementation the M-tree engine is
// validated against, and is also the right choice for small inputs where
// building an index would dominate. Its access counter counts objects
// examined, so pruning (skipping covered objects) is visible in the cost
// the same way skipped subtrees are for the tree engine.
//
// Coordinates live in a contiguous object.FlatDataset and every scan
// goes through the compiled distance kernel: candidates are filtered on
// the squared-distance surrogate (for Euclidean) and no interface
// dispatch happens per object. The white set is a packed bitset.
type FlatEngine struct {
	flat     *object.FlatDataset
	accesses int64
	white    bitset.Set
	tracking bool
}

var (
	_ Engine         = (*FlatEngine)(nil)
	_ CoverageEngine = (*FlatEngine)(nil)
)

// NewFlatEngine creates a flat engine over pts. The coordinates are
// copied into flat storage; later mutation of pts does not affect the
// engine.
func NewFlatEngine(pts []object.Point, m object.Metric) (*FlatEngine, error) {
	flat, err := object.Flatten(pts, m)
	if err != nil {
		return nil, fmt.Errorf("core: flat engine: %w", err)
	}
	return &FlatEngine{flat: flat}, nil
}

// NewFlatEngineOn creates a flat engine over an existing flat dataset
// (of either precision) without copying coordinates.
func NewFlatEngineOn(flat *object.FlatDataset) *FlatEngine {
	return &FlatEngine{flat: flat}
}

// Size implements Engine.
func (f *FlatEngine) Size() int { return f.flat.Len() }

// Metric implements Engine.
func (f *FlatEngine) Metric() object.Metric { return f.flat.Metric() }

// Point implements Engine.
func (f *FlatEngine) Point(id int) object.Point { return f.flat.Point(id) }

// Neighbors implements Engine by scanning every object.
func (f *FlatEngine) Neighbors(id int, r float64) []object.Neighbor {
	return f.NeighborsAppend(nil, id, r)
}

// NeighborsAppend implements Engine.
func (f *FlatEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	f.accesses += int64(f.flat.Len())
	return f.flat.AppendRange(dst, f.flat.Row(id), r, id)
}

// NeighborsOfPoint implements Engine.
func (f *FlatEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	f.accesses += int64(f.flat.Len())
	return f.flat.AppendRange(nil, q, r, -1)
}

// ScanOrder implements Engine; the flat engine has no locality structure,
// so the order is plain id order.
func (f *FlatEngine) ScanOrder() []int {
	ids := make([]int, f.flat.Len())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Accesses implements Engine.
func (f *FlatEngine) Accesses() int64 { return f.accesses }

// ResetAccesses implements Engine.
func (f *FlatEngine) ResetAccesses() { f.accesses = 0 }

// StartCoverage implements CoverageEngine.
func (f *FlatEngine) StartCoverage(white []bool) {
	if white == nil {
		f.white.Reset(f.flat.Len())
		f.white.Fill()
	} else {
		f.white.CopyBools(white)
	}
	f.tracking = true
}

// Cover implements CoverageEngine.
func (f *FlatEngine) Cover(id int) {
	if f.tracking {
		f.white.Clear(id)
	}
}

// IsWhite implements CoverageEngine.
func (f *FlatEngine) IsWhite(id int) bool { return f.tracking && f.white.Test(id) }

// NeighborsWhite implements CoverageEngine. Covered objects are skipped
// and, analogously to grey M-tree subtrees, not charged as accesses.
func (f *FlatEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return f.NeighborsWhiteAppend(nil, id, r)
}

// NeighborsWhiteAppend implements CoverageEngine. The loop mirrors
// FlatDataset.AppendRange (fused threshold test per candidate, exact
// recomputation on survivors) with the white-bit test and per-object
// access accounting woven in; it is kept inline rather than funnelled
// through a predicate callback so the steady-state query stays
// allocation-free — keep the two in sync when the surrogate protocol
// changes.
func (f *FlatEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !f.tracking {
		panic("core: NeighborsWhite without StartCoverage")
	}
	k := f.flat.Kernel()
	rawR := k.RawThreshold(r)
	coords := f.flat.Coords()
	dim := f.flat.Dim()
	q := f.flat.Row(id)
	n := f.flat.Len()
	for j, off := 0, 0; j < n; j, off = j+1, off+dim {
		if !f.white.Test(j) || j == id {
			continue
		}
		f.accesses++
		row := coords[off : off+dim : off+dim]
		if k.Within(q, row, rawR) {
			if d := k.Finish(k.Raw(row, q)); d <= r {
				dst = append(dst, object.Neighbor{ID: j, Dist: d})
			}
		}
	}
	return dst
}

// Components implements CoverageEngine by breadth-first traversal over
// per-object range queries.
func (f *FlatEngine) Components(r float64) *grid.Components {
	return componentsViaQueries(f, r)
}
