//go:build !race

package core

// Alloc-count assertions are meaningful only without the race detector's
// instrumentation, hence the build tag; `go test -race` skips this file.

import (
	"math"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

// TestNeighborsAppendZeroAlloc pins the zero-allocation contract of the
// steady-state query loop: once the destination buffer has grown to the
// working-set high-water mark, NeighborsAppend and NeighborsWhiteAppend
// allocate nothing on any engine.
func TestNeighborsAppendZeroAlloc(t *testing.T) {
	pts := randomPoints(600, 2, 99)
	m := object.Euclidean{}
	const r = 0.15
	for name, e := range allEngines(t, pts, m) {
		buf := make([]object.Neighbor, 0, len(pts))
		id := 0
		allocs := testing.AllocsPerRun(200, func() {
			buf = e.NeighborsAppend(buf[:0], id, r)
			id = (id + 7) % len(pts)
		})
		if allocs != 0 {
			t.Errorf("%s: NeighborsAppend allocates %.1f/op in steady state", name, allocs)
		}
		cov := e.(CoverageEngine)
		cov.StartCoverage(nil)
		allocs = testing.AllocsPerRun(200, func() {
			buf = cov.NeighborsWhiteAppend(buf[:0], id, r)
			id = (id + 7) % len(pts)
		})
		if allocs != 0 {
			t.Errorf("%s: NeighborsWhiteAppend allocates %.1f/op in steady state", name, allocs)
		}
	}
}

// TestComponentSelectZeroAlloc pins the component-decomposed selection's
// steady-state contract: once a worker's scratch has grown to its
// high-water mark, sweeping the whole component range — singleton and
// pair fast paths and full per-component greedy runs alike — allocates
// nothing. Only per-selection setup (solution arrays, scratch, chunk
// slots) may allocate.
func TestComponentSelectZeroAlloc(t *testing.T) {
	pts := randomPoints(600, 2, 100)
	const r = 0.05
	g, err := BuildParallelGraphEngine(pts, object.Euclidean{}, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp := g.Components(r)
	if comp.Count < 10 || comp.Largest() < 3 {
		t.Fatalf("workload too degenerate for the sweep (%d components, largest %d)", comp.Count, comp.Largest())
	}
	csr, ok := g.AdjacencyCSR(r)
	if !ok {
		t.Fatal("no adjacency at build radius")
	}
	s := newSolution(len(pts), r, "alloc probe")
	sc := newComponentScratch(len(pts))
	ids, _ := runComponentRange(csr, comp, 0, comp.Count, r, s, sc, nil) // grow to high-water
	buf := ids[:0]
	inf := math.Inf(1)
	allocs := testing.AllocsPerRun(20, func() {
		for id := range s.Colors {
			s.Colors[id] = White
			s.DistBlack[id] = inf
		}
		buf, _ = runComponentRange(csr, comp, 0, comp.Count, r, s, sc, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("component sweep allocates %.1f/op in steady state", allocs)
	}
}

// TestLiveSelectionZeroAlloc pins the steady-state read contract with
// telemetry enabled: once a published snapshot has materialised its id
// slice (first Selection call after a Flush), every further Selection,
// Size and IsRepresentative read is 0 alloc/op — the instrumented
// mutation path must not leak allocations into the lock-free read path.
func TestLiveSelectionZeroAlloc(t *testing.T) {
	l, err := NewLiveDisC(object.Euclidean{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randomPoints(200, 2, 42) {
		if _, err := l.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	l.Selection() // materialise the id slice
	var got int
	allocs := testing.AllocsPerRun(500, func() {
		ids := l.Selection()
		got = len(ids) + l.Size()
		_ = l.IsRepresentative(0)
	})
	if allocs != 0 {
		t.Errorf("steady-state Selection read allocates %.1f/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("selection unexpectedly empty")
	}
}

// TestLazyHeapZeroAlloc: pushes within capacity and pops must not
// allocate (the former container/heap implementation boxed every item).
func TestLazyHeapZeroAlloc(t *testing.T) {
	h := newLazyHeap(1024)
	counts := make([]int, 256)
	for i := range counts {
		counts[i] = i % 17
		h.push(i, counts[i])
	}
	valid := func(id, key int) bool { return counts[id] == key }
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		h.push(i%256, counts[i%256])
		h.popValid(valid)
		i++
	})
	if allocs != 0 {
		t.Errorf("lazyHeap allocates %.1f/op", allocs)
	}
}
