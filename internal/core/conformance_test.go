package core

import (
	"sort"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

// allEngines builds every engine implementation over the same points.
// The parallel graph engine and the grid engine are built for radius
// 0.2: conformance queries at or below that radius exercise the
// materialised-graph / single-ring paths, larger ones the R-tree
// fallback and multi-ring scans — all must agree with brute force.
func allEngines(t *testing.T, pts []object.Point, m object.Metric) map[string]Engine {
	t.Helper()
	engines := map[string]Engine{
		"flat": flatEngine(t, pts, m),
		"tree": treeEngine(t, pts, m),
	}
	vp, err := BuildVPEngine(pts, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	engines["vptree"] = vp
	rt, err := BuildRTreeEngine(pts, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	engines["rtree"] = rt
	g, err := BuildParallelGraphEngine(pts, m, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	engines["graph"] = g
	ge, err := BuildGridEngine(pts, m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	engines["grid"] = ge
	return engines
}

// TestEngineConformanceNeighbors: every engine must return exactly the
// brute-force neighbour set with exact distances.
func TestEngineConformanceNeighbors(t *testing.T) {
	pts := randomPoints(350, 3, 80)
	m := object.Manhattan{}
	for name, e := range allEngines(t, pts, m) {
		for _, id := range []int{0, 17, 349} {
			for _, r := range []float64{0.05, 0.2, 0.8} {
				got := map[int]float64{}
				for _, nb := range e.Neighbors(id, r) {
					got[nb.ID] = nb.Dist
				}
				want := map[int]float64{}
				for j := range pts {
					if j != id {
						if d := m.Dist(pts[id], pts[j]); d <= r {
							want[j] = d
						}
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s id=%d r=%g: %d neighbours, want %d", name, id, r, len(got), len(want))
				}
				for j, d := range want {
					if got[j] != d {
						t.Fatalf("%s id=%d r=%g: neighbour %d dist %g want %g", name, id, r, j, got[j], d)
					}
				}
			}
		}
	}
}

// TestEngineConformanceNeighborsAppend: for every engine, the
// buffer-reusing query forms must return exactly what the allocating
// forms return (same neighbours, same distances, same order), must
// append after any existing content, and must leave that content
// untouched — the zero-allocation path cannot be allowed to drift from
// the reference path.
func TestEngineConformanceNeighborsAppend(t *testing.T) {
	pts := randomPoints(400, 3, 86)
	m := object.Euclidean{}
	equalNeighbors := func(a, b []object.Neighbor) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	sentinel := object.Neighbor{ID: -7, Dist: -1}
	for name, e := range allEngines(t, pts, m) {
		buf := make([]object.Neighbor, 0, 8) // deliberately small: must grow correctly
		for _, id := range []int{0, 11, 399} {
			for _, r := range []float64{0.05, 0.2, 0.9} {
				want := e.Neighbors(id, r)
				buf = append(buf[:0], sentinel)
				got := e.NeighborsAppend(buf, id, r)
				if len(got) == 0 || got[0] != sentinel {
					t.Fatalf("%s id=%d r=%g: NeighborsAppend clobbered existing content", name, id, r)
				}
				if !equalNeighbors(want, got[1:]) {
					t.Fatalf("%s id=%d r=%g: NeighborsAppend=%v want %v", name, id, r, got[1:], want)
				}
				buf = got[:0]
			}
		}
		cov, ok := e.(CoverageEngine)
		if !ok {
			t.Fatalf("%s: expected CoverageEngine", name)
		}
		cov.StartCoverage(nil)
		for _, id := range []int{3, 42} {
			cov.Cover((id + 13) % len(pts)) // perturb the white set
			for _, r := range []float64{0.1, 0.5} {
				want := cov.NeighborsWhite(id, r)
				got := cov.NeighborsWhiteAppend([]object.Neighbor{sentinel}, id, r)
				if len(got) == 0 || got[0] != sentinel || !equalNeighbors(want, got[1:]) {
					t.Fatalf("%s id=%d r=%g: NeighborsWhiteAppend=%v want %v", name, id, r, got[1:], want)
				}
			}
		}
		if bu, ok := e.(BottomUpEngine); ok {
			for _, stop := range []bool{false, true} {
				want := bu.NeighborsBottomUp(9, 0.2, stop)
				got := bu.NeighborsBottomUpAppend([]object.Neighbor{sentinel}, 9, 0.2, stop)
				if len(got) == 0 || got[0] != sentinel || !equalNeighbors(want, got[1:]) {
					t.Fatalf("%s stop=%v: NeighborsBottomUpAppend drifted", name, stop)
				}
			}
		}
	}
}

// TestEngineConformanceScanOrder: the scan order must be a permutation.
func TestEngineConformanceScanOrder(t *testing.T) {
	pts := randomPoints(200, 2, 81)
	for name, e := range allEngines(t, pts, object.Euclidean{}) {
		order := e.ScanOrder()
		if len(order) != len(pts) {
			t.Fatalf("%s: scan returned %d ids", name, len(order))
		}
		sorted := append([]int(nil), order...)
		sort.Ints(sorted)
		for i, id := range sorted {
			if id != i {
				t.Fatalf("%s: scan order is not a permutation", name)
			}
		}
	}
}

// TestEngineConformanceGreedyIdentical: exact-count greedy selection must
// be identical on every engine, pruned or not, global or
// component-decomposed — the strongest cross-validation of the index
// implementations.
func TestEngineConformanceGreedyIdentical(t *testing.T) {
	pts := randomPoints(450, 2, 82)
	m := object.Euclidean{}
	for _, r := range []float64{0.04, 0.1} {
		var ref []int
		var refName string
		for name, e := range allEngines(t, pts, m) {
			for _, pruned := range []bool{false, true} {
				s := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey, Pruned: pruned})
				if ref == nil {
					ref = s.SortedIDs()
					refName = name
					continue
				}
				if !equalInts(ref, s.SortedIDs()) {
					t.Errorf("r=%g: %s(pruned=%v) differs from %s", r, name, pruned, refName)
				}
			}
			cs := GreedyDisCComponents(e, r, GreedyOptions{Update: UpdateGrey, Pruned: true}, 4)
			if !equalInts(ref, cs.SortedIDs()) {
				t.Errorf("r=%g: %s component mode differs from %s", r, name, refName)
			}
		}
	}
}

// TestEngineConformanceAlgorithmsValid: every algorithm on every engine
// yields a valid result.
func TestEngineConformanceAlgorithmsValid(t *testing.T) {
	pts := randomPoints(300, 2, 83)
	m := object.Euclidean{}
	r := 0.09
	for name, e := range allEngines(t, pts, m) {
		for alg, run := range discAlgorithms() {
			s := run(e, r)
			if err := VerifySolution(e, s); err != nil {
				t.Errorf("%s/%s: %v", name, alg, err)
			}
		}
		for _, cov := range []func(Engine, float64) *Solution{GreedyC, FastC} {
			s := cov(e, r)
			if err := VerifyCoverageOnly(e, s); err != nil {
				t.Errorf("%s coverage algorithm: %v", name, err)
			}
		}
	}
}

// TestEngineConformanceZoom: zooming works and stays valid on every
// engine.
func TestEngineConformanceZoom(t *testing.T) {
	pts := randomPoints(350, 2, 84)
	m := object.Euclidean{}
	for name, e := range allEngines(t, pts, m) {
		prev := GreedyDisC(e, 0.1, GreedyOptions{Update: UpdateGrey})
		in, err := ZoomIn(e, prev.Clone(), 0.05, true, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifySolution(e, in); err != nil {
			t.Errorf("%s zoom-in: %v", name, err)
		}
		out, err := ZoomOut(e, prev.Clone(), 0.2, ZoomOutGreedyA)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifySolution(e, out); err != nil {
			t.Errorf("%s zoom-out: %v", name, err)
		}
	}
}

// TestEngineConformanceAccessCounting: accesses must increase on queries
// and reset to zero.
func TestEngineConformanceAccessCounting(t *testing.T) {
	pts := randomPoints(150, 2, 85)
	for name, e := range allEngines(t, pts, object.Euclidean{}) {
		e.ResetAccesses()
		if e.Accesses() != 0 {
			t.Errorf("%s: reset failed", name)
		}
		e.Neighbors(0, 0.2)
		if e.Accesses() == 0 {
			t.Errorf("%s: query charged nothing", name)
		}
	}
}
