package core

import (
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func newOnline(t *testing.T, r float64) *OnlineDisC {
	t.Helper()
	o, err := NewOnlineDisC(object.Euclidean{}, r, 8)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOnlineAddMaintainsInvariant(t *testing.T) {
	o := newOnline(t, 0.1)
	pts := randomPoints(300, 2, 60)
	for i, p := range pts {
		if _, _, err := o.Add(p); err != nil {
			t.Fatal(err)
		}
		// Verify after every 25th insertion (full check is O(n·|S|)).
		if i%25 == 0 {
			if err := o.Verify(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 300 {
		t.Errorf("live count %d", o.Len())
	}
	if o.Size() == 0 || o.Size() != len(o.Representatives()) {
		t.Errorf("size %d vs %d representatives", o.Size(), len(o.Representatives()))
	}
}

func TestOnlineMatchesBasicDisCOnSameOrder(t *testing.T) {
	// Inserting objects in id order must give exactly the maximal
	// independent set Basic-DisC builds with id-order scanning.
	pts := randomPoints(250, 2, 61)
	m := object.Euclidean{}
	r := 0.12
	o := newOnline(t, r)
	for _, p := range pts {
		if _, _, err := o.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	e := flatEngine(t, pts, m)
	ref := BasicDisC(e, r, false)
	if !equalInts(o.Representatives(), ref.SortedIDs()) {
		t.Errorf("online set %v differs from Basic-DisC %v", o.Representatives(), ref.SortedIDs())
	}
}

func TestOnlineRemoveGrey(t *testing.T) {
	o := newOnline(t, 0.2)
	a, _, _ := o.Add(object.Point{0.5, 0.5})
	b, sel, _ := o.Add(object.Point{0.55, 0.5})
	if sel {
		t.Fatal("covered newcomer promoted")
	}
	if err := o.Remove(b); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 1 || !o.IsRepresentative(a) {
		t.Error("removing a grey object disturbed the representatives")
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineRemoveRepresentativeRepairs(t *testing.T) {
	o := newOnline(t, 0.1)
	// A representative with two dependents on opposite sides.
	center, _, _ := o.Add(object.Point{0.5, 0.5})
	left, _, _ := o.Add(object.Point{0.42, 0.5})
	right, _, _ := o.Add(object.Point{0.58, 0.5})
	if o.Size() != 1 {
		t.Fatalf("setup: %d representatives", o.Size())
	}
	if err := o.Remove(center); err != nil {
		t.Fatal(err)
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
	// left and right are 0.16 apart (> r): both must now be covered —
	// left promoted first (arrival order), right needs its own promotion.
	if !o.IsRepresentative(left) || !o.IsRepresentative(right) {
		t.Errorf("repair failed: left=%v right=%v",
			o.IsRepresentative(left), o.IsRepresentative(right))
	}
}

func TestOnlineRandomChurnKeepsInvariant(t *testing.T) {
	o := newOnline(t, 0.08)
	rng := rand.New(rand.NewPCG(9, 9))
	var liveIDs []int
	for step := 0; step < 400; step++ {
		if len(liveIDs) == 0 || rng.Float64() < 0.7 {
			p := object.Point{rng.Float64(), rng.Float64()}
			id, _, err := o.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			liveIDs = append(liveIDs, id)
		} else {
			k := rng.IntN(len(liveIDs))
			id := liveIDs[k]
			liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
			if err := o.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
		if step%40 == 0 {
			if err := o.Verify(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
	if o.Len() != len(liveIDs) {
		t.Errorf("live %d, want %d", o.Len(), len(liveIDs))
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnlineDisC(nil, 0.1, 8); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := NewOnlineDisC(object.Euclidean{}, -1, 8); err == nil {
		t.Error("negative radius accepted")
	}
	o := newOnline(t, 0.1)
	if err := o.Remove(0); err == nil {
		t.Error("removing unknown id accepted")
	}
	id, _, _ := o.Add(object.Point{0.1, 0.1})
	if err := o.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := o.Remove(id); err == nil {
		t.Error("double removal accepted")
	}
	if o.IsRepresentative(id) {
		t.Error("removed object still a representative")
	}
	// Dimension mismatch surfaces from the tree.
	if _, _, err := o.Add(object.Point{0.1, 0.2, 0.3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestOnlineEmptyVerify(t *testing.T) {
	o := newOnline(t, 0.1)
	if err := o.Verify(); err != nil {
		t.Errorf("empty maintainer invalid: %v", err)
	}
}
