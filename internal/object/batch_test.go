package object

import (
	"math"
	"math/rand/v2"
	"testing"
	"unsafe"
)

func addrOfFloat32(s []float32) unsafe.Pointer { return unsafe.Pointer(&s[0]) }

// batchMetrics are the metrics with compiled batch plans; halfEuclid
// exercises the generic fallback plan.
func batchMetrics() []Metric {
	return []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, Hamming{}, Cosine{}, DotProduct{}, halfEuclid{}}
}

var batchDims = []int{2, 3, 7, 64, 768}

// randomRows fills a contiguous row-major block with the same value mix
// randomPair uses (identical coords, tiny, large, moderate).
func randomRows(rng *rand.Rand, n, dim int, categorical bool) ([]float64, []float64) {
	q := make([]float64, dim)
	rows := make([]float64, n*dim)
	fill := func(dst []float64) {
		for i := range dst {
			if categorical {
				dst[i] = float64(rng.IntN(5))
				continue
			}
			switch rng.IntN(8) {
			case 0:
				dst[i] = 1.25
			case 1:
				dst[i] = rng.Float64() * 1e-300
			case 2:
				dst[i] = (rng.Float64() - 0.5) * 1e150
			default:
				dst[i] = (rng.Float64() - 0.5) * 20
			}
		}
	}
	fill(q)
	fill(rows)
	// A few adversarial rows: exact copies of q (distance zero) and
	// one-coordinate perturbations (distance decided by a single term).
	for j := 0; j < n && j < 4; j++ {
		copy(rows[j*dim:(j+1)*dim], q)
		if j%2 == 1 {
			rows[j*dim+rng.IntN(dim)] += 1e-9
		}
	}
	return q, rows
}

// TestRawBatchBitIdentical pins the float64 batch contract: every out[j]
// equals the per-pair Raw call bit for bit, for every metric (including
// the generic fallback) across the dimension spread.
func TestRawBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, m := range batchMetrics() {
		for _, dim := range batchDims {
			k := CompileKernel(m, dim)
			n := 37
			q, rows := randomRows(rng, n, dim, m.Name() == "hamming")
			out := make([]float64, n)
			k.RawBatch(q, rows, out)
			for j := 0; j < n; j++ {
				row := rows[j*dim : (j+1)*dim]
				want := k.Raw(q, row)
				if math.Float64bits(out[j]) != math.Float64bits(want) {
					t.Fatalf("%s/%d: row %d RawBatch=%v Raw=%v", m.Name(), dim, j, out[j], want)
				}
			}
		}
	}
}

// TestFilterWithinMatchesScalar pins the fused filters: the accepted id
// set of FilterWithin and FilterGather equals brute-force thresholding
// of per-pair Raw calls, with thresholds chosen adversarially at and
// around exact row distances.
func TestFilterWithinMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for _, m := range batchMetrics() {
		for _, dim := range batchDims {
			k := CompileKernel(m, dim)
			n := 41
			q, rows := randomRows(rng, n, dim, m.Name() == "hamming")
			// Thresholds straddling real row distances bit the early-exit
			// and widening logic hardest.
			pick := k.Raw(q, rows[(n/2)*dim:(n/2+1)*dim])
			for _, rawR := range []float64{pick, math.Nextafter(pick, math.Inf(1)), math.Nextafter(pick, math.Inf(-1)), 0, math.Inf(1)} {
				var want []int32
				for j := 0; j < n; j++ {
					if k.Raw(q, rows[j*dim:(j+1)*dim]) <= rawR {
						want = append(want, 5+int32(j))
					}
				}
				got := k.FilterWithin(q, rows, 5, rawR, nil)
				if len(got) != len(want) {
					t.Fatalf("%s/%d rawR=%v: FilterWithin %v want %v", m.Name(), dim, rawR, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/%d rawR=%v: FilterWithin %v want %v", m.Name(), dim, rawR, got, want)
					}
				}
				// Gather over a shuffled subset must agree too.
				ids := rng.Perm(n)[:n/2+1]
				var gatherWant []int32
				ids32 := make([]int32, len(ids))
				for i, id := range ids {
					ids32[i] = int32(id)
				}
				for _, id := range ids32 {
					if k.Raw(q, rows[int(id)*dim:int(id+1)*dim]) <= rawR {
						gatherWant = append(gatherWant, id)
					}
				}
				gatherGot := k.FilterGather(q, rows, ids32, rawR, nil)
				if len(gatherGot) != len(gatherWant) {
					t.Fatalf("%s/%d rawR=%v: FilterGather %v want %v", m.Name(), dim, rawR, gatherGot, gatherWant)
				}
				for i := range gatherGot {
					if gatherGot[i] != gatherWant[i] {
						t.Fatalf("%s/%d rawR=%v: FilterGather %v want %v", m.Name(), dim, rawR, gatherGot, gatherWant)
					}
				}
			}
		}
	}
}

// embeddingPoints generates moderate-magnitude points with adversarial
// structure for the float32 path: near-duplicates differing at float32
// resolution, a zero vector, and scaled copies (cosine-identical).
func embeddingPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for j := range p {
			p[j] = (rng.Float64() - 0.5) * 4
		}
		pts[i] = p
	}
	if n >= 4 {
		base := pts[0]
		near := base.Clone()
		near[rng.IntN(dim)] += 3e-8 // below float32 resolution of O(1) values
		pts[1] = near
		scaled := base.Clone()
		for j := range scaled {
			scaled[j] *= 2
		}
		pts[2] = scaled
		pts[3] = make(Point, dim) // zero vector: cosine convention dist = 1
	}
	return pts
}

// roundPoints returns the float64 image of rounding every coordinate to
// float32 — the exact coordinate values a Float32 dataset stores.
func roundPoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		q := make(Point, len(p))
		for j, v := range p {
			q[j] = float64(float32(v))
		}
		out[i] = q
	}
	return out
}

// TestFloat32PathBitIdenticalToRounded pins the float32 fast path's
// guarantee, which is stronger than a ULP tolerance: a Float32 dataset
// answers every row-query range scan bit-identically to a Float64
// dataset holding the same rounded coordinates, because the float32
// filter only ever pre-screens and every survivor is re-checked with
// the exact float64 kernel. Radii sit exactly on and around true row
// distances so the widened threshold's boundary behaviour is exercised.
func TestFloat32PathBitIdenticalToRounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for _, m := range []Metric{Euclidean{}, Cosine{}, DotProduct{}, Manhattan{}} {
		for _, dim := range batchDims {
			n := 48
			pts := embeddingPoints(rng, n, dim)
			f32, err := Flatten32(pts, m)
			if err != nil {
				t.Fatal(err)
			}
			f64, err := Flatten(roundPoints(pts), m)
			if err != nil {
				t.Fatal(err)
			}
			if !f32.f32OK && m.Name() != "manhattan" {
				t.Fatalf("%s/%d: float32 filter path not engaged on moderate data", m.Name(), dim)
			}
			for trial := 0; trial < 40; trial++ {
				qid := rng.IntN(n)
				other := rng.IntN(n)
				d := f64.Dist(qid, other)
				radii := []float64{d, math.Nextafter(d, math.Inf(1)), math.Nextafter(d, math.Inf(-1)), d * 1.001, 0.5}
				for _, r := range radii {
					got := f32.AppendRange(nil, f32.Row(qid), r, qid)
					want := f64.AppendRange(nil, f64.Row(qid), r, qid)
					if len(got) != len(want) {
						t.Fatalf("%s/%d qid=%d r=%v: float32 path %d hits, float64 %d", m.Name(), dim, qid, r, len(got), len(want))
					}
					for i := range got {
						if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
							t.Fatalf("%s/%d qid=%d r=%v: hit %d = %+v want %+v", m.Name(), dim, qid, r, i, got[i], want[i])
						}
					}
					// Sub-range and gather entries must agree with the
					// full scan restricted to their candidates.
					lo, hi := n/4, 3*n/4
					gotRows := f32.AppendRangeRows(nil, qid, lo, hi, qid, r)
					var wantRows []Neighbor
					for _, nb := range want {
						if nb.ID >= lo && nb.ID < hi {
							wantRows = append(wantRows, nb)
						}
					}
					if len(gotRows) != len(wantRows) {
						t.Fatalf("%s/%d qid=%d r=%v: AppendRangeRows %v want %v", m.Name(), dim, qid, r, gotRows, wantRows)
					}
					for i := range gotRows {
						if gotRows[i] != wantRows[i] {
							t.Fatalf("%s/%d qid=%d r=%v: AppendRangeRows %v want %v", m.Name(), dim, qid, r, gotRows, wantRows)
						}
					}
				}
			}
		}
	}
}

// TestFloat32GatherMatchesScalar covers AppendRangeIDs (the grid's cell
// scan entry) on Float32 Euclidean data against the float64 reference.
func TestFloat32GatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	for _, dim := range batchDims {
		n := 40
		pts := embeddingPoints(rng, n, dim)
		f32, err := Flatten32(pts, Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		f64, err := Flatten(roundPoints(pts), Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			qid := rng.IntN(n)
			ids := rng.Perm(n)[:n/2]
			ids32 := make([]int32, len(ids))
			for i, id := range ids {
				ids32[i] = int32(id)
			}
			r := f64.Dist(qid, ids[0])
			got := f32.AppendRangeIDs(nil, nil, qid, ids32, qid, r)
			want := f64.AppendRangeIDs(nil, f64.Row(qid), -1, ids32, qid, r)
			if len(got) != len(want) {
				t.Fatalf("dim=%d qid=%d: gather %v want %v", dim, qid, got, want)
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("dim=%d qid=%d: gather hit %d = %+v want %+v", dim, qid, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFloat32IngestTolerance documents the one place precision is lost:
// rounding at ingest. Distances over the rounded dataset stay within
// the documented relative tolerance of the unrounded float64 distances
// for well-scaled data.
func TestFloat32IngestTolerance(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	for _, m := range []Metric{Euclidean{}, Cosine{}} {
		for _, dim := range []int{7, 64, 768} {
			pts := embeddingPoints(rng, 32, dim)
			exact, err := Flatten(pts, m)
			if err != nil {
				t.Fatal(err)
			}
			rounded, err := Flatten32(pts, m)
			if err != nil {
				t.Fatal(err)
			}
			// Ingest rounding perturbs each coordinate by <= 2⁻²⁴
			// relative; across a dim-term accumulation the distance
			// moves by O(dim·2⁻²⁴) relative (plus the same absolute
			// scale for cosine). 2⁻¹² bounds that for dim <= 768 with
			// an order of magnitude to spare.
			const tol = 0x1p-12
			for i := 0; i < 32; i++ {
				for j := i + 1; j < 32; j++ {
					de, dr := exact.Dist(i, j), rounded.Dist(i, j)
					if math.Abs(de-dr) > tol*(1+math.Abs(de)) {
						t.Fatalf("%s/%d: Dist(%d,%d) exact %v rounded %v", m.Name(), dim, i, j, de, dr)
					}
				}
			}
		}
	}
}

// TestFlatten32Validation covers the constructors' error paths and the
// norms verification on load.
func TestFlatten32Validation(t *testing.T) {
	if _, err := Flatten32([]Point{{1e300, 0}}, Euclidean{}); err == nil {
		t.Fatal("coordinate overflowing float32 must be rejected")
	}
	if _, err := NewFlatDataset32([]float32{1, 2, 3}, 2, 2, Euclidean{}, nil); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	if _, err := NewFlatDataset32([]float32{1, 2, 3, 4}, 2, 2, Euclidean{}, []float64{5, 25}); err == nil {
		t.Fatal("norms for a norm-free metric must be rejected")
	}
	good, err := Flatten32([]Point{{3, 4}, {0, 1}}, Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	if got := good.SqNorms(); len(got) != 2 || got[0] != 25 || got[1] != 1 {
		t.Fatalf("SqNorms = %v", got)
	}
	if _, err := NewFlatDataset32([]float32{3, 4, 0, 1}, 2, 2, Cosine{}, []float64{25, 1}); err != nil {
		t.Fatalf("valid norms rejected: %v", err)
	}
	if _, err := NewFlatDataset32([]float32{3, 4, 0, 1}, 2, 2, Cosine{}, []float64{26, 1}); err == nil {
		t.Fatal("corrupted norms must be rejected")
	}
	if _, err := NewFlatDataset32([]float32{3, 4, 0, 1}, 2, 2, Cosine{}, []float64{25}); err == nil {
		t.Fatal("short norms must be rejected")
	}
}

// TestFloat32Alignment pins the layout contract: the mirror's base is
// 64-byte-aligned and rows start Stride32 apart with zero padding.
func TestFloat32Alignment(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	for _, dim := range []int{1, 2, 15, 16, 17, 127, 768} {
		pts := embeddingPoints(rng, 5, dim)
		f, err := Flatten32(pts, Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		if f.Stride32() != (dim+15)&^15 {
			t.Fatalf("dim %d: stride %d", dim, f.Stride32())
		}
		c := f.Coords32()
		if addr := uintptr(addrOfFloat32(c)); addr%64 != 0 {
			t.Fatalf("dim %d: base address %#x not 64-byte aligned", dim, addr)
		}
		for i := 0; i < 5; i++ {
			row := f.row32(i)
			for j := dim; j < f.Stride32(); j++ {
				if row[j] != 0 {
					t.Fatalf("dim %d row %d: padding lane %d = %v", dim, i, j, row[j])
				}
			}
			for j := 0; j < dim; j++ {
				if float64(row[j]) != f.Row(i)[j] {
					t.Fatalf("dim %d row %d lane %d: mirror %v view %v", dim, i, j, row[j], f.Row(i)[j])
				}
			}
		}
	}
}
