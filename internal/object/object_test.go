package object

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPointBasics(t *testing.T) {
	p := Point{1, 2, 3}
	if p.Dim() != 3 {
		t.Errorf("Dim=%d", p.Dim())
	}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliases storage")
	}
	if !p.Equal(Point{1, 2, 3}) || p.Equal(q) || p.Equal(Point{1, 2}) {
		t.Error("Equal misbehaves")
	}
	if s := p.String(); s != "(1, 2, 3)" {
		t.Errorf("String=%q", s)
	}
}

func TestValidatePoints(t *testing.T) {
	if _, err := ValidatePoints(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ValidatePoints([]Point{{}}); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, err := ValidatePoints([]Point{{1, 2}, {1}}); err == nil {
		t.Error("ragged accepted")
	}
	if d, err := ValidatePoints([]Point{{1, 2}, {3, 4}}); err != nil || d != 2 {
		t.Errorf("got (%d,%v)", d, err)
	}
}

func TestMetricValues(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	cases := []struct {
		m    Metric
		want float64
	}{
		{Euclidean{}, 5},
		{Manhattan{}, 7},
		{Chebyshev{}, 4},
		{Hamming{}, 2},
	}
	for _, c := range cases {
		if got := c.m.Dist(a, b); got != c.want {
			t.Errorf("%s: got %g want %g", c.m.Name(), got, c.want)
		}
	}
	if got := (Hamming{}).Dist(Point{1, 2, 3}, Point{1, 5, 3}); got != 1 {
		t.Errorf("hamming partial: %g", got)
	}
}

// metric axioms via testing/quick: symmetry, identity, non-negativity and
// the triangle inequality, which the M-tree pruning depends on.
func TestMetricAxiomsQuick(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, Hamming{}}
	rng := rand.New(rand.NewPCG(1, 2))
	gen := func() Point {
		p := make(Point, 4)
		for i := range p {
			// Coarse grid so Hamming sees collisions too.
			p[i] = math.Round(rng.Float64()*8) / 8
		}
		return p
	}
	for _, m := range metrics {
		prop := func(_ uint8) bool {
			a, b, c := gen(), gen(), gen()
			dab, dba := m.Dist(a, b), m.Dist(b, a)
			if dab != dba || dab < 0 {
				return false
			}
			if m.Dist(a, a) != 0 {
				return false
			}
			return m.Dist(a, c) <= m.Dist(a, b)+m.Dist(b, c)+1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"euclidean", "l2", "manhattan", "l1", "chebyshev", "linf", "hamming", "cosine", "dot", "inner-product"} {
		if _, err := MetricByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := MetricByName("mahalanobis"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestMaxPairwiseDist(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {0.5, 0.5}}
	if got := MaxPairwiseDist(pts, Euclidean{}); got != 1 {
		t.Errorf("got %g", got)
	}
}

func TestDatasetBoundsAndNormalize(t *testing.T) {
	d := &Dataset{Points: []Point{{2, -1}, {4, 3}, {3, 1}}}
	lo, hi := d.Bounds()
	if !lo.Equal(Point{2, -1}) || !hi.Equal(Point{4, 3}) {
		t.Fatalf("bounds lo=%v hi=%v", lo, hi)
	}
	d.Normalize()
	lo, hi = d.Bounds()
	if !lo.Equal(Point{0, 0}) || !hi.Equal(Point{1, 1}) {
		t.Fatalf("normalized bounds lo=%v hi=%v", lo, hi)
	}
	// Constant dimension maps to zero.
	c := &Dataset{Points: []Point{{5}, {5}}}
	c.Normalize()
	if c.Points[0][0] != 0 || c.Points[1][0] != 0 {
		t.Error("constant dimension not zeroed")
	}
}

func TestDatasetLabelsAndValues(t *testing.T) {
	d := &Dataset{
		Points: []Point{{0}, {1}},
		Labels: []string{"a", ""},
		Values: [][]string{{"zero", "one"}},
	}
	if d.Label(0) != "a" || d.Label(1) != "#1" || d.Label(5) != "#5" {
		t.Error("labels wrong")
	}
	if d.ValueString(0, 0) != "zero" || d.ValueString(1, 0) != "one" {
		t.Error("values wrong")
	}
	plain := &Dataset{Points: []Point{{2.5}}}
	if plain.ValueString(0, 0) != "2.5" {
		t.Errorf("plain value %q", plain.ValueString(0, 0))
	}
}

func TestDatasetSubset(t *testing.T) {
	d := &Dataset{
		Points: []Point{{0}, {1}, {2}},
		Labels: []string{"a", "b", "c"},
	}
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || !s.Points[0].Equal(Point{2}) || s.Labels[1] != "a" {
		t.Errorf("subset wrong: %+v", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{
		Points:    []Point{{0.25, 1}, {0.5, 2}},
		Labels:    []string{"first", "second"},
		AttrNames: []string{"x", "y"},
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Points[1].Equal(Point{0.5, 2}) || back.Labels[0] != "first" {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.AttrNames[0] != "x" || back.AttrNames[1] != "y" {
		t.Errorf("attr names: %v", back.AttrNames)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"notlabel,x\n1,2\n",
		"label,x\na,notanumber\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
