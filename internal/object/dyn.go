package object

import "fmt"

// DynDataset is the mutable counterpart of FlatDataset: the same
// contiguous row-major coordinate storage plus a compiled kernel, but
// rows can be appended (ids are assigned densely, never reused) and
// retracted (tombstoned in place — the row keeps its slot so live ids
// stay stable and every bookkeeping array stays index-addressable).
// Periodic compaction (CompactFlat) squeezes the tombstones out into a
// canonical FlatDataset plus an id remap, which is how the incremental
// machinery proves itself bit-identical to a from-scratch build.
//
// The dimensionality is fixed by the first appended point, so an empty
// DynDataset can be created before any data exists — the streaming
// entry points need exactly that.
type DynDataset struct {
	coords []float64
	dim    int
	dead   []bool
	live   int
	metric Metric
	kern   Kernel
}

// NewDynDataset returns an empty dataset for metric m. The kernel is
// compiled on the first Append, when the dimensionality is known.
func NewDynDataset(m Metric) (*DynDataset, error) {
	if m == nil {
		return nil, fmt.Errorf("object: dyn dataset: nil metric")
	}
	return &DynDataset{metric: m}, nil
}

// DynFromFlat copies a FlatDataset into mutable storage: every row live,
// ids preserved.
func DynFromFlat(f *FlatDataset) *DynDataset {
	d := &DynDataset{
		coords: append([]float64(nil), f.Coords()...),
		dim:    f.Dim(),
		dead:   make([]bool, f.Len()),
		live:   f.Len(),
		metric: f.Metric(),
		kern:   CompileKernel(f.Metric(), f.Dim()),
	}
	return d
}

// Append adds p as a new live row and returns its id (the next dense
// slot, counting tombstones). The first append fixes the dimensionality.
func (d *DynDataset) Append(p Point) (int, error) {
	if len(p) == 0 {
		return 0, fmt.Errorf("object: dyn dataset: zero-dimensional point")
	}
	if d.dim == 0 {
		d.dim = len(p)
		d.kern = CompileKernel(d.metric, d.dim)
	} else if len(p) != d.dim {
		return 0, fmt.Errorf("object: dyn dataset: point has dimension %d, want %d", len(p), d.dim)
	}
	id := len(d.dead)
	d.coords = append(d.coords, p...)
	d.dead = append(d.dead, false)
	d.live++
	return id, nil
}

// Delete tombstones row id. The slot is retained (Row keeps answering,
// ids above are unaffected); only compaction reclaims it.
func (d *DynDataset) Delete(id int) error {
	if id < 0 || id >= len(d.dead) {
		return fmt.Errorf("object: dyn dataset: id %d out of range [0,%d)", id, len(d.dead))
	}
	if d.dead[id] {
		return fmt.Errorf("object: dyn dataset: id %d already deleted", id)
	}
	d.dead[id] = true
	d.live--
	return nil
}

// Alive reports whether id names a live row.
func (d *DynDataset) Alive(id int) bool {
	return id >= 0 && id < len(d.dead) && !d.dead[id]
}

// Slots returns the total number of rows ever appended, tombstones
// included — the exclusive upper bound of the id domain.
func (d *DynDataset) Slots() int { return len(d.dead) }

// Live returns the number of live rows.
func (d *DynDataset) Live() int { return d.live }

// Dim returns the dimensionality (0 before the first Append).
func (d *DynDataset) Dim() int { return d.dim }

// Metric returns the dataset's metric.
func (d *DynDataset) Metric() Metric { return d.metric }

// Kernel returns the compiled distance kernel (valid after the first
// Append).
func (d *DynDataset) Kernel() *Kernel { return &d.kern }

// Row returns the coordinates of row id (tombstoned rows included) as a
// subslice of the flat storage; it is invalidated by the next Append.
func (d *DynDataset) Row(id int) []float64 {
	off := id * d.dim
	return d.coords[off : off+d.dim : off+d.dim]
}

// Point is Row typed as a Point. Zero-copy; see Row for validity.
func (d *DynDataset) Point(id int) Point { return Point(d.Row(id)) }

// LivePoints materialises an independent copy of every live row in
// ascending id order — the input a rebuild-from-scratch consumes.
func (d *DynDataset) LivePoints() []Point {
	pts := make([]Point, 0, d.live)
	for id := range d.dead {
		if !d.dead[id] {
			pts = append(pts, d.Point(id).Clone())
		}
	}
	return pts
}

// CompactFlat squeezes the tombstones out: live rows are copied in
// ascending id order into a fresh FlatDataset with dense ids 0..Live()-1,
// and remap[oldID] gives each row's new id (-1 for tombstones). The remap
// is monotone over live ids, so orderings by id are preserved through it.
// Returns an error when no live rows remain (a FlatDataset cannot be
// empty).
func (d *DynDataset) CompactFlat() (*FlatDataset, []int32, error) {
	if d.live == 0 {
		return nil, nil, fmt.Errorf("object: dyn dataset: nothing live to compact")
	}
	coords := make([]float64, 0, d.live*d.dim)
	remap := make([]int32, len(d.dead))
	next := int32(0)
	for id := range d.dead {
		if d.dead[id] {
			remap[id] = -1
			continue
		}
		remap[id] = next
		next++
		coords = append(coords, d.Row(id)...)
	}
	flat, err := NewFlatDataset(coords, d.live, d.dim, d.metric)
	if err != nil {
		return nil, nil, err
	}
	return flat, remap, nil
}
