// Package object provides the metric-space primitives shared by every other
// package in this repository: points, distance metrics and datasets.
//
// Objects are identified by their integer position (ID) inside a Dataset.
// All algorithms in internal/core and all index structures in internal/mtree
// operate on these IDs, which keeps bookkeeping arrays compact and makes
// solutions directly comparable across engines.
package object

import (
	"fmt"
	"strconv"
	"strings"
)

// Point is a vector in a d-dimensional space. For categorical datasets
// (compared with the Hamming metric) each coordinate holds an integer
// category code.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ...)" with compact float formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Neighbor is an object ID paired with its distance from some query object.
// Range queries return neighbors so that callers never need to recompute
// distances the index has already evaluated.
type Neighbor struct {
	ID   int
	Dist float64
}

// ValidatePoints checks that all points are non-empty and share the same
// dimensionality, returning that dimensionality.
func ValidatePoints(pts []Point) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("object: empty point set")
	}
	d := len(pts[0])
	if d == 0 {
		return 0, fmt.Errorf("object: zero-dimensional point at index 0")
	}
	for i, p := range pts {
		if len(p) != d {
			return 0, fmt.Errorf("object: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	return d, nil
}
