package object

import (
	"math"
	"math/rand/v2"
	"testing"
)

// ulpDiff returns the distance in representable float64 steps between two
// finite non-negative values.
func ulpDiff(a, b float64) uint64 {
	ia, ib := math.Float64bits(a), math.Float64bits(b)
	if ia > ib {
		return ia - ib
	}
	return ib - ia
}

func randomPair(rng *rand.Rand, dim int, categorical bool) (Point, Point) {
	a := make(Point, dim)
	b := make(Point, dim)
	for i := 0; i < dim; i++ {
		if categorical {
			a[i] = float64(rng.IntN(5))
			b[i] = float64(rng.IntN(5))
			continue
		}
		switch rng.IntN(8) {
		case 0: // identical coordinate
			v := rng.Float64()
			a[i], b[i] = v, v
		case 1: // tiny magnitudes
			a[i] = rng.Float64() * 1e-300
			b[i] = rng.Float64() * 1e-300
		case 2: // large magnitudes
			a[i] = (rng.Float64() - 0.5) * 1e150
			b[i] = (rng.Float64() - 0.5) * 1e150
		default:
			a[i] = (rng.Float64() - 0.5) * 20
			b[i] = (rng.Float64() - 0.5) * 20
		}
	}
	return a, b
}

// TestKernelMatchesMetric is the property test required by the kernel
// exactness contract: for every built-in metric and a spread of
// dimensionalities (covering the 2-D/3-D specialisations and the generic
// fallback), Dist and Finish∘Raw agree with the Metric interface to
// within 1 ULP — in practice bit-for-bit — across random points.
func TestKernelMatchesMetric(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, Hamming{}}
	rng := rand.New(rand.NewPCG(42, 43))
	for _, m := range metrics {
		for _, dim := range []int{1, 2, 3, 4, 7, 16} {
			k := CompileKernel(m, dim)
			if !k.Compiled() {
				t.Fatalf("%s/%d: kernel not compiled", m.Name(), dim)
			}
			for trial := 0; trial < 2000; trial++ {
				a, b := randomPair(rng, dim, m.Name() == "hamming")
				want := m.Dist(a, b)
				if got := k.Dist(a, b); ulpDiff(got, want) > 1 {
					t.Fatalf("%s/%d: Dist=%v want %v (Δ %d ULP) a=%v b=%v",
						m.Name(), dim, got, want, ulpDiff(got, want), a, b)
				}
				raw := k.Raw(a, b)
				if got := k.Finish(raw); ulpDiff(got, want) > 1 {
					t.Fatalf("%s/%d: Finish(Raw)=%v want %v a=%v b=%v",
						m.Name(), dim, got, want, a, b)
				}
			}
		}
	}
}

// TestKernelRawThresholdSound verifies the squared-distance pruning rule
// never drops a true neighbour: whenever Dist(a,b) <= r, the surrogate
// must pass the widened threshold. Radii are chosen adversarially at and
// around the exact distance.
func TestKernelRawThresholdSound(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}} {
		for _, dim := range []int{1, 2, 3, 5} {
			k := CompileKernel(m, dim)
			for trial := 0; trial < 3000; trial++ {
				a, b := randomPair(rng, dim, false)
				d := m.Dist(a, b)
				if math.IsInf(d, 0) {
					continue
				}
				raw := k.Raw(a, b)
				for _, r := range []float64{d, math.Nextafter(d, math.Inf(1)), d * 1.0000001} {
					if d <= r && raw > k.RawThreshold(r) {
						t.Fatalf("%s/%d: missed neighbour: d=%v r=%v raw=%v thr=%v",
							m.Name(), dim, d, r, raw, k.RawThreshold(r))
					}
				}
			}
		}
	}
}

// TestKernelFallbackMetric: unknown metrics get a wrapping kernel.
type halfEuclid struct{}

func (halfEuclid) Dist(a, b Point) float64 { return Euclidean{}.Dist(a, b) / 2 }
func (halfEuclid) Name() string            { return "half-euclid" }

func TestKernelFallbackMetric(t *testing.T) {
	k := CompileKernel(halfEuclid{}, 3)
	a := Point{1, 2, 3}
	b := Point{4, 5, 6}
	want := halfEuclid{}.Dist(a, b)
	if got := k.Dist(a, b); got != want {
		t.Fatalf("fallback Dist=%v want %v", got, want)
	}
	if k.Raw(a, b) != want || k.RawThreshold(0.5) != 0.5 || k.Finish(want) != want {
		t.Fatal("fallback surrogate must be the identity")
	}
}

func TestFlatDataset(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}, {5, 6}, {1, 2}}
	f, err := Flatten(pts, Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 || f.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", f.Len(), f.Dim())
	}
	for i, p := range pts {
		if !f.Point(i).Equal(p) {
			t.Fatalf("row %d = %v want %v", i, f.Point(i), p)
		}
		for j := range pts {
			if got, want := f.Dist(i, j), (Euclidean{}).Dist(pts[i], pts[j]); got != want {
				t.Fatalf("Dist(%d,%d)=%v want %v", i, j, got, want)
			}
		}
	}
	if d := f.DistToPoint(0, []float64{1, 3}); d != 1 {
		t.Fatalf("DistToPoint=%v want 1", d)
	}
	ns := f.AppendRange(nil, []float64{1, 2}, 0.5, 3)
	if len(ns) != 1 || ns[0].ID != 0 || ns[0].Dist != 0 {
		t.Fatalf("AppendRange=%v", ns)
	}
	// Buffer reuse: results append after existing content.
	pre := []Neighbor{{ID: -1}}
	ns = f.AppendRange(pre, []float64{1, 2}, 10, -1)
	if len(ns) != 5 || ns[0].ID != -1 || ns[1].ID != 0 {
		t.Fatalf("AppendRange with prefix=%v", ns)
	}
	if _, err := Flatten(nil, Euclidean{}); err == nil {
		t.Fatal("Flatten(nil) must fail")
	}
	if _, err := Flatten(pts, nil); err == nil {
		t.Fatal("Flatten with nil metric must fail")
	}
}
