package object

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the dataset. The first column is the label (possibly
// empty), followed by one column per coordinate. A header row with
// attribute names is emitted when available.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dim()
	header := make([]string, 0, dim+1)
	header = append(header, "label")
	for i := 0; i < dim; i++ {
		if i < len(d.AttrNames) {
			header = append(header, d.AttrNames[i])
		} else {
			header = append(header, fmt.Sprintf("x%d", i))
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("object: write csv header: %w", err)
	}
	row := make([]string, dim+1)
	for id, p := range d.Points {
		if id < len(d.Labels) {
			row[0] = d.Labels[id]
		} else {
			row[0] = ""
		}
		for i, v := range p {
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("object: write csv row %d: %w", id, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("object: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("object: read csv: empty input")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "label" {
		return nil, fmt.Errorf("object: read csv: malformed header %v", header)
	}
	d := &Dataset{AttrNames: append([]string(nil), header[1:]...)}
	for n, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("object: read csv: row %d has %d fields, want %d", n+1, len(rec), len(header))
		}
		p := make(Point, len(rec)-1)
		for i, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("object: read csv: row %d col %d: %w", n+1, i+1, err)
			}
			p[i] = v
		}
		d.Points = append(d.Points, p)
		d.Labels = append(d.Labels, rec[0])
	}
	return d, nil
}
