package object

import (
	"fmt"
	"math"
	"unsafe"
)

// flat32.go implements the float32 fast path: padded, 64-byte-aligned
// float32 coordinate storage plus pre-filters that reject most
// candidates at half the memory traffic of the float64 scan, with
// multi-accumulator inner loops the hardware can overlap.
//
// Correctness model: for a Float32 dataset the float32 coordinates are
// authoritative — the float64 view stores float64(float32(v)) exactly —
// so the float32 filter approximates the float64 computation over
// *identical* input values. The filter compares against a threshold
// widened by a bound on the float32 accumulation error, so it never
// rejects a true neighbour; every survivor is re-checked with the exact
// float64 kernel. Selections over a Float32 dataset are therefore
// bit-identical whether or not the fast path ran, and across every
// engine — the precision trade-off happens once, at ingest, when
// coordinates are rounded.
//
// The fast path only serves queries that are dataset rows (IsRow):
// rounding an external query point to float32 would introduce an input
// perturbation the widening does not model. External queries simply
// take the float64 path.

// Precision selects the coordinate storage width of a FlatDataset.
type Precision uint8

const (
	// Float64 stores coordinates at full double precision (the default).
	Float64 Precision = iota
	// Float32 rounds coordinates to float32 at ingest and keeps an
	// aligned float32 mirror for batched pre-filtering. Exact float64
	// arithmetic over the rounded values remains the source of truth.
	Float32
)

// String returns "float64" or "float32".
func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// stride32 pads a row to a multiple of 16 float32 lanes (one 64-byte
// cache line), so every row starts cache-line-aligned and the unrolled
// loops need no scalar tail; the padding is zero-filled, which
// contributes nothing to any supported metric's accumulation.
func padStride32(dim int) int { return (dim + 15) &^ 15 }

// maxAbs32 bounds coordinate magnitudes admitted to the float32 filter
// path: |v| <= 2^45 keeps every intermediate (differences, squares,
// length-dim sums) comfortably inside float32 range, so the relative
// error analysis is not polluted by overflow.
const maxAbs32 = float32(0x1p45)

// alignedFloat32 allocates a 64-byte-aligned []float32 of length n.
func alignedFloat32(n int) []float32 {
	buf := make([]float32, n+15)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % 64; rem != 0 {
		off = int(64-rem) / 4
	}
	return buf[off : off+n : off+n]
}

// Flatten32 copies pts into float32 flat storage (rounding each
// coordinate once) and compiles the distance kernel for m. Coordinates
// whose magnitude overflows float32 are rejected.
func Flatten32(pts []Point, m Metric) (*FlatDataset, error) {
	dim, err := ValidatePoints(pts)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("object: flatten32: nil metric")
	}
	f := &FlatDataset{
		n: len(pts), dim: dim, prec: Float32,
		stride32: padStride32(dim),
		kern:     CompileKernel(m, dim),
	}
	f.coords32 = alignedFloat32(f.n * f.stride32)
	f.coords = make([]float64, f.n*dim)
	for i, p := range pts {
		r32 := f.coords32[i*f.stride32 : i*f.stride32+dim]
		r64 := f.coords[i*dim : i*dim+dim]
		for j, v := range p {
			c := float32(v)
			if math.IsInf(float64(c), 0) && !math.IsInf(v, 0) {
				return nil, fmt.Errorf("object: flatten32: coordinate %g of point %d overflows float32", v, i)
			}
			r32[j] = c
			r64[j] = float64(c)
		}
	}
	f.initDerived()
	return f, nil
}

// NewFlatDataset32 builds a Float32 dataset from unpadded row-major
// float32 storage (len(coords32) must equal n*dim), copying it into the
// padded aligned layout and deriving the float64 view. sqNorms, when
// non-nil, must be the per-row Σv² values (the snapshot loader passes
// the persisted array); they are verified against a recomputation, so a
// corrupted norms array cannot skew cosine distances.
func NewFlatDataset32(coords32 []float32, n, dim int, m Metric, sqNorms []float64) (*FlatDataset, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("object: flat dataset32: invalid shape %d x %d", n, dim)
	}
	if len(coords32) != n*dim {
		return nil, fmt.Errorf("object: flat dataset32: %d coordinates for shape %d x %d", len(coords32), n, dim)
	}
	if m == nil {
		return nil, fmt.Errorf("object: flat dataset32: nil metric")
	}
	if sqNorms != nil && len(sqNorms) != n {
		return nil, fmt.Errorf("object: flat dataset32: %d norms for %d points", len(sqNorms), n)
	}
	f := &FlatDataset{
		n: n, dim: dim, prec: Float32,
		stride32: padStride32(dim),
		kern:     CompileKernel(m, dim),
	}
	f.coords32 = alignedFloat32(n * f.stride32)
	f.coords = make([]float64, n*dim)
	for i := 0; i < n; i++ {
		src := coords32[i*dim : (i+1)*dim]
		copy(f.coords32[i*f.stride32:], src)
		r64 := f.coords[i*dim : (i+1)*dim]
		for j, c := range src {
			r64[j] = float64(c)
		}
	}
	f.initDerived()
	if sqNorms != nil {
		if f.sqNorms == nil {
			return nil, fmt.Errorf("object: flat dataset32: norms supplied for metric %q, which uses none", m.Name())
		}
		for i, s := range sqNorms {
			if f.sqNorms[i] != s {
				return nil, fmt.Errorf("object: flat dataset32: norm %d is %g, recomputed %g", i, s, f.sqNorms[i])
			}
		}
	}
	return f, nil
}

// Precision returns the coordinate storage precision.
func (f *FlatDataset) Precision() Precision { return f.prec }

// Stride32 returns the padded float32 row stride (0 for Float64
// datasets).
func (f *FlatDataset) Stride32() int { return f.stride32 }

// Coords32 exposes the padded float32 mirror (read-only by convention;
// nil for Float64 datasets). Rows are Stride32 apart with zero-filled
// tails; the snapshot writer de-pads via Stride32.
func (f *FlatDataset) Coords32() []float32 { return f.coords32 }

// SqNorms returns the per-row squared norms (nil unless the metric is
// cosine or dot product). Read-only by convention.
func (f *FlatDataset) SqNorms() []float64 { return f.sqNorms }

// row32 returns the padded float32 row of id.
func (f *FlatDataset) row32(id int) []float32 {
	off := id * f.stride32
	return f.coords32[off : off+f.stride32 : off+f.stride32]
}

// initDerived computes the per-row caches: squared norms for the
// embedding metrics, and the float32 threshold-widening inputs plus the
// magnitude gate for Float32 datasets.
func (f *FlatDataset) initDerived() {
	switch f.kern.metric.(type) {
	case Cosine, DotProduct:
		f.sqNorms = make([]float64, f.n)
		for i := 0; i < f.n; i++ {
			var s float64
			for _, v := range f.Row(i) {
				s += v * v
			}
			f.sqNorms[i] = s
		}
	}
	if f.prec != Float32 {
		return
	}
	var maxAbs float32
	for _, v := range f.coords32 {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	// A NaN coordinate fails the <= and disables the fast path too.
	f.f32OK = maxAbs <= maxAbs32
	switch f.kern.metric.(type) {
	case Cosine:
		f.invN32 = make([]float32, f.n)
		for i, s := range f.sqNorms {
			if s == 0 {
				continue // invN32 stays 0: the filter then yields the exact convention dist = 1
			}
			if s < 0x1p-80 || s > 0x1p80 {
				f.f32OK = false
			}
			f.invN32[i] = float32(1 / math.Sqrt(s))
		}
	case DotProduct:
		f.norms32 = make([]float32, f.n)
		for i, s := range f.sqNorms {
			if s > 0x1p80 {
				f.f32OK = false
			}
			f.norms32[i] = float32(math.Sqrt(s))
		}
	}
}

// filterSlack32 is the relative threshold widening of the float32
// filters: a bound on the float32 accumulation error of a dim-term sum
// (4 accumulators, two roundings per term, checkpoint sums) with margin
// for the float64→float32 threshold conversion. False positives cost a
// re-check; false negatives are impossible while the gates hold.
func filterSlack32(dim int) float64 { return float64(dim+64) * 0x1p-24 }

// appendRows is the shared scan body behind AppendRange and
// AppendRangeRows: every id in [lo, hi) except exclude whose distance
// to the query is <= r is appended in ascending id order. qid >= 0
// marks the query as row qid (q may then be nil) and unlocks the
// float32 pre-filters; qid < 0 scans an external point q with the
// float64 kernels, which above filter64MinDim still route through the
// widened float64 pre-filters (filter64.go).
func (f *FlatDataset) appendRows(dst []Neighbor, q []float64, qid, lo, hi, exclude int, r float64) []Neighbor {
	rawR := f.kern.RawThreshold(r)
	if qid >= 0 && f.f32OK {
		switch f.kern.metric.(type) {
		case Euclidean:
			// The relative widening needs a threshold clear of the
			// subnormal range; any practical radius is.
			if rawR >= 0x1p-80 {
				return f.appendRows32Euclidean(dst, qid, lo, hi, exclude, r, rawR)
			}
		case Cosine:
			return f.appendRows32Cosine(dst, qid, lo, hi, exclude, r)
		case DotProduct:
			return f.appendRows32Dot(dst, qid, lo, hi, exclude, r)
		}
	}
	if q == nil {
		q = f.Row(qid)
	}
	if f.dim >= filter64MinDim {
		switch f.kern.metric.(type) {
		case Euclidean:
			if rawR >= 0x1p-80 {
				return f.appendRows64Euclidean(dst, q, lo, hi, exclude, r, rawR)
			}
		case Cosine:
			return f.appendRows64Cosine(dst, q, qid, lo, hi, exclude, r)
		case DotProduct:
			return f.appendRows64Dot(dst, q, qid, lo, hi, exclude, r)
		}
	}
	switch f.kern.metric.(type) {
	case Cosine:
		return f.appendRowsCosine(dst, q, qid, lo, hi, exclude, r)
	case DotProduct:
		return f.appendRowsDot(dst, q, lo, hi, exclude, r)
	}
	dim := f.dim
	within := f.kern.within
	raw := f.kern.raw
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		if within(q, row, rawR) {
			if d := f.kern.Finish(raw(row, q)); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

// AppendRangeIDs appends to dst every candidate in ids (in input order)
// except exclude whose distance to the query is <= r. qid >= 0 marks
// the query as row qid and unlocks the float32 pre-filter (Euclidean);
// the grid's cell scans are its caller, and the grid only serves the Lp
// metrics, so no cosine/dot gather variant exists.
func (f *FlatDataset) AppendRangeIDs(dst []Neighbor, q []float64, qid int, ids []int32, exclude int, r float64) []Neighbor {
	rawR := f.kern.RawThreshold(r)
	if qid >= 0 && f.f32OK && rawR >= 0x1p-80 {
		if _, ok := f.kern.metric.(Euclidean); ok {
			return f.appendIDs32Euclidean(dst, qid, ids, exclude, r, rawR)
		}
	}
	if q == nil {
		q = f.Row(qid)
	}
	if f.dim >= filter64MinDim && rawR >= 0x1p-80 {
		if _, ok := f.kern.metric.(Euclidean); ok {
			return f.appendIDs64Euclidean(dst, q, ids, exclude, r, rawR)
		}
	}
	dim := f.dim
	within := f.kern.within
	raw := f.kern.raw
	for _, id32 := range ids {
		id := int(id32)
		if id == exclude {
			continue
		}
		off := id * dim
		row := f.coords[off : off+dim : off+dim]
		if within(q, row, rawR) {
			if d := f.kern.Finish(raw(row, q)); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

func (f *FlatDataset) appendRows32Euclidean(dst []Neighbor, qid, lo, hi, exclude int, r, rawR float64) []Neighbor {
	q32 := f.row32(qid)
	q64 := f.Row(qid)
	wide := float32(rawR * (1 + filterSlack32(f.dim)))
	dim, s32 := f.dim, f.stride32
	for id, off := lo, lo*s32; id < hi; id, off = id+1, off+s32 {
		if id == exclude {
			continue
		}
		if !within32SqEuclidean(q32, f.coords32[off:off+s32:off+s32], wide) {
			continue
		}
		o64 := id * dim
		if raw := f.kern.raw(f.coords[o64:o64+dim:o64+dim], q64); raw <= rawR {
			if d := f.kern.Finish(raw); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

func (f *FlatDataset) appendIDs32Euclidean(dst []Neighbor, qid int, ids []int32, exclude int, r, rawR float64) []Neighbor {
	q32 := f.row32(qid)
	q64 := f.Row(qid)
	wide := float32(rawR * (1 + filterSlack32(f.dim)))
	dim, s32 := f.dim, f.stride32
	for _, id32 := range ids {
		id := int(id32)
		if id == exclude {
			continue
		}
		off := id * s32
		if !within32SqEuclidean(q32, f.coords32[off:off+s32:off+s32], wide) {
			continue
		}
		o64 := id * dim
		if raw := f.kern.raw(f.coords[o64:o64+dim:o64+dim], q64); raw <= rawR {
			if d := f.kern.Finish(raw); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

func (f *FlatDataset) appendRows32Cosine(dst []Neighbor, qid, lo, hi, exclude int, r float64) []Neighbor {
	q32 := f.row32(qid)
	invQ := f.invN32[qid]
	// Cosine values live in [0, 2], so an absolute widening suffices;
	// it also absorbs the float32 rounding of r itself.
	wide := float32(r) + float32(filterSlack32(f.dim))
	naQ := f.sqNorms[qid]
	s32 := f.stride32
	for id, off := lo, lo*s32; id < hi; id, off = id+1, off+s32 {
		if id == exclude {
			continue
		}
		if 1-dot32(q32, f.coords32[off:off+s32:off+s32])*invQ*f.invN32[id] > wide {
			continue
		}
		if d := f.cosineDistRow(naQ, qid, id); d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}

func (f *FlatDataset) appendRows32Dot(dst []Neighbor, qid, lo, hi, exclude int, r float64) []Neighbor {
	q32 := f.row32(qid)
	q64 := f.Row(qid)
	// 1 − ⟨a,b⟩ is unbounded, so the widening scales with ‖a‖‖b‖ (which
	// bounds the term-magnitude sum by Cauchy–Schwarz), plus a small
	// absolute term for the final subtraction from 1.
	slack := filterSlack32(f.dim) * float64(f.norms32[qid])
	dim, s32 := f.dim, f.stride32
	for id, off := lo, lo*s32; id < hi; id, off = id+1, off+s32 {
		if id == exclude {
			continue
		}
		raw32 := 1 - dot32(q32, f.coords32[off:off+s32:off+s32])
		if float64(raw32) > r+slack*float64(f.norms32[id])+0x1p-20 {
			continue
		}
		o64 := id * dim
		row := f.coords[o64 : o64+dim : o64+dim]
		var dot float64
		for i, qi := range q64 {
			dot += qi * row[i]
		}
		if d := 1 - dot; d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}

// cosineDistRow computes the exact cosine distance between rows qid and
// id, bit-identical to the scalar kernel: the cached sqNorms are folded
// in the reference order, and float multiplication commutes bitwise, so
// sqrt(naQ*sqNorms[id]) equals the interleaved loop's sqrt(na*nb).
func (f *FlatDataset) cosineDistRow(naQ float64, qid, id int) float64 {
	nb := f.sqNorms[id]
	if naQ == 0 || nb == 0 {
		return 1
	}
	q := f.Row(qid)
	row := f.Row(id)
	var dot float64
	for i, qi := range q {
		dot += qi * row[i]
	}
	return 1 - dot/math.Sqrt(naQ*nb)
}

func (f *FlatDataset) appendRowsCosine(dst []Neighbor, q []float64, qid, lo, hi, exclude int, r float64) []Neighbor {
	var naQ float64
	if qid >= 0 {
		naQ = f.sqNorms[qid]
	} else {
		for _, v := range q {
			naQ += v * v
		}
	}
	dim := f.dim
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		var dot float64
		for i, qi := range q {
			dot += qi * row[i]
		}
		d := 1.0
		if naQ != 0 && f.sqNorms[id] != 0 {
			d = 1 - dot/math.Sqrt(naQ*f.sqNorms[id])
		}
		if d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}

func (f *FlatDataset) appendRowsDot(dst []Neighbor, q []float64, lo, hi, exclude int, r float64) []Neighbor {
	dim := f.dim
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		var dot float64
		for i, qi := range q {
			dot += qi * row[i]
		}
		if d := 1 - dot; d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}

// within32SqEuclidean is the float32 squared-Euclidean pre-filter over
// padded rows: 4 independent accumulators over 4-lane groups, partial
// total tested against the widened threshold every 32 lanes. A false
// return is definitive (the widened threshold plus the monotonicity of
// non-negative partial sums guarantee the exact value exceeds rawR);
// true only means "re-check in float64".
func within32SqEuclidean(q, row []float32, wide float32) bool {
	var s0, s1, s2, s3 float32
	n := len(q)
	for i := 0; i < n; i += 32 {
		e := i + 32
		if e > n {
			e = n
		}
		for j := i; j < e; j += 4 {
			a := q[j : j+4 : j+4]
			b := row[j : j+4 : j+4]
			d0 := a[0] - b[0]
			d1 := a[1] - b[1]
			d2 := a[2] - b[2]
			d3 := a[3] - b[3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if (s0+s1)+(s2+s3) > wide {
			return false
		}
	}
	return true
}

// dot32 is the 4-accumulator float32 dot product over padded rows. No
// early exit: dot terms are signed, so partial sums are not monotone.
func dot32(q, row []float32) float32 {
	var s0, s1, s2, s3 float32
	for j := 0; j < len(q); j += 4 {
		a := q[j : j+4 : j+4]
		b := row[j : j+4 : j+4]
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
	}
	return (s0 + s1) + (s2 + s3)
}
