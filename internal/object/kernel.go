package object

import "math"

// Kernel is a distance-evaluation plan compiled once for a (metric,
// dimensionality) pair. It removes the two per-evaluation costs of the
// Metric interface from the query hot path: the dynamic dispatch, and —
// for Euclidean — the square root on every candidate that turns out to be
// a miss.
//
// A kernel exposes the true distance (Dist) plus a monotone surrogate
// (Raw) that is cheaper to evaluate: the squared distance for Euclidean,
// the distance itself for every other metric. Range predicates evaluate
// Raw against RawThreshold(r) first and only call Finish (the square
// root) on survivors.
//
// Exactness contract: Dist and Finish∘Raw are bit-for-bit identical to
// the Metric's own Dist on the same platform — the specialised kernels
// replicate the metric's accumulation order exactly — so indexes backed
// by kernels report the same distances and therefore the same neighbour
// sets as the reference implementation. RawThreshold is conservative:
// Raw(a,b) <= RawThreshold(r) whenever Dist(a,b) <= r, so filtering on
// the surrogate never drops a true neighbour; callers must re-check
// Finish(raw) <= r on survivors to discard the (at most one-ULP-wide)
// band of false positives it admits.
type Kernel struct {
	metric Metric
	dim    int
	// squared marks kernels whose Raw is the squared distance.
	squared bool
	dist    func(a, b []float64) float64
	raw     func(a, b []float64) float64
	// One-vs-many plans compiled alongside the scalar bodies (batch.go).
	// rawBatch fills out[j] with Raw(q, row j); within is the per-row
	// range check used by the fused filters, free to stop accumulating
	// as soon as the (monotone non-decreasing) partial value exceeds the
	// threshold.
	rawBatch func(q, rows []float64, dim int, out []float64)
	within   func(q, row []float64, rawR float64) bool
}

// CompileKernel selects the specialised implementation for m at the given
// dimensionality. Unknown (user-provided) metrics get a fallback kernel
// that simply wraps m.Dist, so every caller can use the kernel API
// unconditionally.
func CompileKernel(m Metric, dim int) Kernel {
	k := Kernel{metric: m, dim: dim}
	switch m.(type) {
	case Euclidean:
		k.squared = true
		switch dim {
		case 2:
			k.raw, k.dist = sqEuclidean2, euclidean2
		case 3:
			k.raw, k.dist = sqEuclidean3, euclidean3
		default:
			k.raw, k.dist = sqEuclideanN, euclideanN
		}
	case Manhattan:
		switch dim {
		case 2:
			k.dist = manhattan2
		case 3:
			k.dist = manhattan3
		default:
			k.dist = manhattanN
		}
		k.raw = k.dist
	case Chebyshev:
		switch dim {
		case 2:
			k.dist = chebyshev2
		case 3:
			k.dist = chebyshev3
		default:
			k.dist = chebyshevN
		}
		k.raw = k.dist
	case Hamming:
		k.dist = hammingN
		k.raw = k.dist
	case Cosine:
		k.dist = cosineN
		k.raw = k.dist
	case DotProduct:
		k.dist = dotN
		k.raw = k.dist
	default:
		k.dist = func(a, b []float64) float64 { return m.Dist(Point(a), Point(b)) }
		k.raw = k.dist
	}
	compileBatch(&k)
	return k
}

// Metric returns the metric the kernel was compiled for.
func (k *Kernel) Metric() Metric { return k.metric }

// Dim returns the dimensionality the kernel was compiled for (generic
// kernels accept any dimensionality; the specialised ones require it).
func (k *Kernel) Dim() int { return k.dim }

// Compiled reports whether the kernel has been initialised (CompileKernel
// was called); the zero Kernel is not usable.
func (k *Kernel) Compiled() bool { return k.dist != nil }

// Dist returns the true distance, bit-identical to Metric().Dist.
func (k *Kernel) Dist(a, b []float64) float64 { return k.dist(a, b) }

// Raw returns the monotone surrogate distance (squared distance for
// Euclidean, the distance itself otherwise).
func (k *Kernel) Raw(a, b []float64) float64 { return k.raw(a, b) }

// RawThreshold maps a query radius onto the surrogate scale such that
// Dist(a,b) <= r implies Raw(a,b) <= RawThreshold(r). For the squared
// surrogate the bound is r² widened by a few ULPs to absorb the rounding
// of both the squaring and the square root; survivors must be re-checked
// with Finish.
func (k *Kernel) RawThreshold(r float64) float64 {
	if !k.squared {
		return r
	}
	rr := r * r
	// fl(sqrt(raw)) <= r implies raw <= r²(1+5u)/(1-u) with u = 2⁻⁵³;
	// a relative widening of 2⁻⁴⁸ dominates that bound comfortably.
	return rr + rr*0x1p-48
}

// Finish converts a surrogate value back to the true distance,
// bit-identical to what Dist would have returned for the same pair.
func (k *Kernel) Finish(raw float64) float64 {
	if k.squared {
		return math.Sqrt(raw)
	}
	return raw
}

// The specialised bodies below replicate the exact accumulation order of
// the corresponding Metric.Dist loop (s starts at zero and folds terms
// left to right), which is what makes them bit-identical — including on
// architectures where the compiler fuses s += d*d into an FMA, since the
// expression shape matches the reference loop body.

func sqEuclideanN(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func euclideanN(a, b []float64) float64 { return math.Sqrt(sqEuclideanN(a, b)) }

func sqEuclidean2(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	var s float64
	s += d0 * d0
	s += d1 * d1
	return s
}

func euclidean2(a, b []float64) float64 { return math.Sqrt(sqEuclidean2(a, b)) }

func sqEuclidean3(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	d2 := a[2] - b[2]
	var s float64
	s += d0 * d0
	s += d1 * d1
	s += d2 * d2
	return s
}

func euclidean3(a, b []float64) float64 { return math.Sqrt(sqEuclidean3(a, b)) }

func manhattanN(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func manhattan2(a, b []float64) float64 {
	var s float64
	s += math.Abs(a[0] - b[0])
	s += math.Abs(a[1] - b[1])
	return s
}

func manhattan3(a, b []float64) float64 {
	var s float64
	s += math.Abs(a[0] - b[0])
	s += math.Abs(a[1] - b[1])
	s += math.Abs(a[2] - b[2])
	return s
}

func chebyshevN(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func chebyshev2(a, b []float64) float64 {
	var m float64
	if d := math.Abs(a[0] - b[0]); d > m {
		m = d
	}
	if d := math.Abs(a[1] - b[1]); d > m {
		m = d
	}
	return m
}

func chebyshev3(a, b []float64) float64 {
	var m float64
	if d := math.Abs(a[0] - b[0]); d > m {
		m = d
	}
	if d := math.Abs(a[1] - b[1]); d > m {
		m = d
	}
	if d := math.Abs(a[2] - b[2]); d > m {
		m = d
	}
	return m
}

func hammingN(a, b []float64) float64 {
	var s float64
	for i := range a {
		if a[i] != b[i] {
			s++
		}
	}
	return s
}

func cosineN(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

func dotN(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return 1 - dot
}
