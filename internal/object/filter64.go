package object

import "math"

// filter64.go implements the float64 widened pre-filters behind the
// high-dimensional row scans. Architecture mirror of flat32.go: a fast
// conservative filter whose only promise is that a rejected row is a
// true reject, followed by the exact scalar kernel on survivors, so
// every reported neighbour and distance stays bit-identical to the
// per-pair reference protocol.
//
// Where the float32 filter halves memory traffic, these keep float64
// arithmetic but trade the reference kernels' serial folds — whose
// loop-carried dependency costs one add latency per coordinate — for
// four independent accumulators the hardware can overlap. The fold
// order changes, so the filter value only approximates the reference
// value; the threshold is therefore widened by a bound on the
// difference between the two folds. Unlike the float32 path, no
// coordinate is perturbed, so the filters serve external query points
// as well as dataset rows.

// filter64MinDim gates the pre-filters: below it the serial fold's
// dependency chain is short enough that a second pass over survivors
// costs more than the overlap wins. At and above it (one cache line of
// float64 lanes) the filters reject most candidates at roughly one
// cycle per lane.
const filter64MinDim = 16

// filterSlack64 bounds the relative difference between a 4-accumulator
// float64 fold of dim terms and the reference serial fold, measured
// against the sum of term magnitudes: each fold accrues at most dim
// roundings of 2⁻⁵³ to first order, so 2·dim·2⁻⁵³ separates them; the
// (dim+64)·2⁻⁵⁰ used here keeps a 4× margin plus an absolute floor for
// the comparison arithmetic. For the non-negative Euclidean terms the
// magnitude sum is the value itself, so the bound applies as a relative
// widening of the threshold; the signed cosine/dot terms are bounded
// through Cauchy-Schwarz by the callers.
func filterSlack64(dim int) float64 { return float64(dim+64) * 0x1p-50 }

// within4SqEuclidean is the widened squared-Euclidean pre-filter: four
// independent accumulators over 4-lane groups, partial total tested
// against the widened threshold every 32 lanes (sound because the
// non-negative partial sums are monotone). A false return is
// definitive; true means "re-check with the reference fold".
func within4SqEuclidean(q, row []float64, wide float64) bool {
	var s0, s1, s2, s3 float64
	n := len(q)
	i := 0
	for i+32 <= n {
		for e := i + 32; i < e; i += 4 {
			a := q[i : i+4 : i+4]
			b := row[i : i+4 : i+4]
			d0 := a[0] - b[0]
			d1 := a[1] - b[1]
			d2 := a[2] - b[2]
			d3 := a[3] - b[3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if (s0+s1)+(s2+s3) > wide {
			return false
		}
	}
	for ; i+4 <= n; i += 4 {
		a := q[i : i+4 : i+4]
		b := row[i : i+4 : i+4]
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := q[i] - row[i]
		s0 += d * d
	}
	return (s0+s1)+(s2+s3) <= wide
}

// dot4 is the 4-accumulator float64 dot product (serial tail). No early
// exit: dot terms are signed, so partial sums are not monotone.
func dot4(q, row []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(q)
	i := 0
	for ; i+4 <= n; i += 4 {
		a := q[i : i+4 : i+4]
		b := row[i : i+4 : i+4]
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
	}
	for ; i < n; i++ {
		s0 += q[i] * row[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// appendRows64Euclidean is the high-dimensional float64 Euclidean scan:
// widened 4-accumulator pre-filter, reference-order re-check of
// survivors. Callers guarantee dim >= filter64MinDim and a threshold
// clear of the subnormal range (the relative widening needs it).
func (f *FlatDataset) appendRows64Euclidean(dst []Neighbor, q []float64, lo, hi, exclude int, r, rawR float64) []Neighbor {
	wide := rawR * (1 + filterSlack64(f.dim))
	dim := f.dim
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		if !within4SqEuclidean(q, row, wide) {
			continue
		}
		if raw := f.kern.raw(row, q); raw <= rawR {
			if d := f.kern.Finish(raw); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

// appendIDs64Euclidean is the gather twin of appendRows64Euclidean for
// the grid's cell scans and the updater's repair probes.
func (f *FlatDataset) appendIDs64Euclidean(dst []Neighbor, q []float64, ids []int32, exclude int, r, rawR float64) []Neighbor {
	wide := rawR * (1 + filterSlack64(f.dim))
	dim := f.dim
	for _, id32 := range ids {
		id := int(id32)
		if id == exclude {
			continue
		}
		off := id * dim
		row := f.coords[off : off+dim : off+dim]
		if !within4SqEuclidean(q, row, wide) {
			continue
		}
		if raw := f.kern.raw(row, q); raw <= rawR {
			if d := f.kern.Finish(raw); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}

// appendRows64Cosine pre-filters with dot4 and re-checks survivors with
// the reference fold of appendRowsCosine. Cosine distances live in
// [0, 2], so an absolute widening suffices: dot4's fold-order error is
// bounded by filterSlack64·‖q‖‖b‖ (Cauchy–Schwarz on the term
// magnitudes), and dividing by √(naQ·nb) leaves at most the slack
// itself; its 4× margin absorbs the sqrt and division roundings. Rows
// with zero norm take the exact convention distance 1, never the
// filter.
func (f *FlatDataset) appendRows64Cosine(dst []Neighbor, q []float64, qid, lo, hi, exclude int, r float64) []Neighbor {
	var naQ float64
	if qid >= 0 {
		naQ = f.sqNorms[qid]
	} else {
		for _, v := range q {
			naQ += v * v
		}
	}
	if naQ == 0 {
		// Convention distance 1 to every row; nothing to filter.
		return f.appendRowsCosine(dst, q, qid, lo, hi, exclude, r)
	}
	invQN := 1 / math.Sqrt(naQ)
	wide := r + filterSlack64(f.dim)
	dim := f.dim
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		nb := f.sqNorms[id]
		if nb == 0 {
			if 1 <= r {
				dst = append(dst, Neighbor{ID: id, Dist: 1})
			}
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		if 1-dot4(q, row)*invQN/math.Sqrt(nb) > wide {
			continue
		}
		var dot float64
		for i, qi := range q {
			dot += qi * row[i]
		}
		if d := 1 - dot/math.Sqrt(naQ*nb); d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}

// appendRows64Dot pre-filters with dot4 and re-checks survivors with
// the reference fold of appendRowsDot. 1 − ⟨a,b⟩ is unbounded, so the
// widening scales with ‖a‖‖b‖ (Cauchy–Schwarz bounds the fold's term
// magnitudes), plus an absolute floor for the subtraction from 1.
func (f *FlatDataset) appendRows64Dot(dst []Neighbor, q []float64, qid, lo, hi, exclude int, r float64) []Neighbor {
	var naQ float64
	if qid >= 0 {
		naQ = f.sqNorms[qid]
	} else {
		for _, v := range q {
			naQ += v * v
		}
	}
	slack := filterSlack64(f.dim) * math.Sqrt(naQ)
	dim := f.dim
	for id, off := lo, lo*dim; id < hi; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		row := f.coords[off : off+dim : off+dim]
		if 1-dot4(q, row) > r+slack*math.Sqrt(f.sqNorms[id])+0x1p-40 {
			continue
		}
		var dot float64
		for i, qi := range q {
			dot += qi * row[i]
		}
		if d := 1 - dot; d <= r {
			dst = append(dst, Neighbor{ID: id, Dist: d})
		}
	}
	return dst
}
