package object

import "fmt"

// FlatDataset stores the coordinates of n points in a single contiguous
// row-major []float64 (stride = Dim) together with a Kernel compiled for
// the metric. Compared with a []Point — a slice of independently
// heap-allocated vectors — the flat layout keeps sequential scans inside
// one cache-friendly allocation and makes every row access a bounds-check
// rather than a pointer chase. It is the storage the zero-allocation
// query path is built on.
type FlatDataset struct {
	coords []float64
	n, dim int
	kern   Kernel
}

// Flatten copies pts into flat storage and compiles the distance kernel
// for m. The original points are not retained.
func Flatten(pts []Point, m Metric) (*FlatDataset, error) {
	dim, err := ValidatePoints(pts)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("object: flatten: nil metric")
	}
	coords := make([]float64, len(pts)*dim)
	for i, p := range pts {
		copy(coords[i*dim:(i+1)*dim], p)
	}
	return &FlatDataset{coords: coords, n: len(pts), dim: dim, kern: CompileKernel(m, dim)}, nil
}

// NewFlatDataset wraps existing row-major storage — n points of dim
// coordinates each, so len(coords) must equal n*dim — without copying,
// and compiles the distance kernel for m. The snapshot loader uses it to
// alias a dataset straight out of a decoded file buffer; the storage
// must not be modified afterwards.
func NewFlatDataset(coords []float64, n, dim int, m Metric) (*FlatDataset, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("object: flat dataset: invalid shape %d x %d", n, dim)
	}
	if len(coords) != n*dim {
		return nil, fmt.Errorf("object: flat dataset: %d coordinates for shape %d x %d", len(coords), n, dim)
	}
	if m == nil {
		return nil, fmt.Errorf("object: flat dataset: nil metric")
	}
	return &FlatDataset{coords: coords, n: n, dim: dim, kern: CompileKernel(m, dim)}, nil
}

// Len returns the number of points.
func (f *FlatDataset) Len() int { return f.n }

// Dim returns the dimensionality.
func (f *FlatDataset) Dim() int { return f.dim }

// Kernel returns the compiled distance kernel.
func (f *FlatDataset) Kernel() *Kernel { return &f.kern }

// Metric returns the metric the kernel was compiled for.
func (f *FlatDataset) Metric() Metric { return f.kern.metric }

// Row returns the coordinates of point id as a subslice of the flat
// storage. The caller must not modify or grow it.
func (f *FlatDataset) Row(id int) []float64 {
	off := id * f.dim
	return f.coords[off : off+f.dim : off+f.dim]
}

// Point is Row typed as a Point, for Engine interoperability. Zero-copy.
func (f *FlatDataset) Point(id int) Point { return Point(f.Row(id)) }

// Points materialises one Point header per row, all aliasing the flat
// storage (no coordinate copies). The result is what APIs built around
// []Point need when the authoritative storage is already flat.
func (f *FlatDataset) Points() []Point {
	pts := make([]Point, f.n)
	for i := range pts {
		pts[i] = f.Point(i)
	}
	return pts
}

// Coords exposes the backing storage (read-only by convention) for
// callers that iterate rows by offset without per-row slicing.
func (f *FlatDataset) Coords() []float64 { return f.coords }

// Dist returns the true distance between points i and j.
func (f *FlatDataset) Dist(i, j int) float64 { return f.kern.dist(f.Row(i), f.Row(j)) }

// DistToPoint returns the true distance between point i and an arbitrary
// query vector q (len(q) must equal Dim).
func (f *FlatDataset) DistToPoint(i int, q []float64) float64 { return f.kern.dist(f.Row(i), q) }

// AppendRange appends to dst every point within r of q, excluding the
// point with id exclude (-1 for none), in ascending id order, and returns
// the extended slice. It evaluates the surrogate distance against the
// widened threshold first, so misses never pay the square root.
func (f *FlatDataset) AppendRange(dst []Neighbor, q []float64, r float64, exclude int) []Neighbor {
	rawR := f.kern.RawThreshold(r)
	raw := f.kern.raw
	dim := f.dim
	for id, off := 0, 0; id < f.n; id, off = id+1, off+dim {
		if id == exclude {
			continue
		}
		if s := raw(f.coords[off:off+dim:off+dim], q); s <= rawR {
			if d := f.kern.Finish(s); d <= r {
				dst = append(dst, Neighbor{ID: id, Dist: d})
			}
		}
	}
	return dst
}
