package object

import "fmt"

// FlatDataset stores the coordinates of n points in a single contiguous
// row-major []float64 (stride = Dim) together with a Kernel compiled for
// the metric. Compared with a []Point — a slice of independently
// heap-allocated vectors — the flat layout keeps sequential scans inside
// one cache-friendly allocation and makes every row access a bounds-check
// rather than a pointer chase. It is the storage the zero-allocation
// query path is built on.
//
// A dataset built with Flatten32/NewFlatDataset32 additionally keeps the
// authoritative coordinates as a 64-byte-aligned, padded float32 mirror
// (see flat32.go); the []float64 view then holds float64(float32(v)) and
// remains what every exact kernel evaluates, so all distance results are
// bit-identical whether or not the float32 fast path pre-filtered them.
type FlatDataset struct {
	coords []float64
	n, dim int
	kern   Kernel

	prec Precision
	// coords32 is the padded (stride32 per row, zero-filled tail),
	// 64-byte-aligned float32 mirror; non-nil only for Float32 datasets.
	coords32 []float32
	stride32 int
	// sqNorms[i] = Σ coords[i][j]², folded left to right exactly as the
	// cosine kernel folds its ‖b‖² accumulator; non-nil for cosine and
	// dot-product datasets of either precision.
	sqNorms []float64
	// invN32[i] = float32(1/√sqNorms[i]) (0 for zero rows; cosine) and
	// norms32[i] = float32(√sqNorms[i]) (dot product) back the float32
	// filter's threshold widening.
	invN32  []float32
	norms32 []float32
	// f32OK gates the float32 filter path: coordinate and norm
	// magnitudes must sit where its error analysis holds (flat32.go).
	f32OK bool
}

// Flatten copies pts into flat storage and compiles the distance kernel
// for m. The original points are not retained.
func Flatten(pts []Point, m Metric) (*FlatDataset, error) {
	dim, err := ValidatePoints(pts)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("object: flatten: nil metric")
	}
	coords := make([]float64, len(pts)*dim)
	for i, p := range pts {
		copy(coords[i*dim:(i+1)*dim], p)
	}
	f := &FlatDataset{coords: coords, n: len(pts), dim: dim, kern: CompileKernel(m, dim)}
	f.initDerived()
	return f, nil
}

// NewFlatDataset wraps existing row-major storage — n points of dim
// coordinates each, so len(coords) must equal n*dim — without copying,
// and compiles the distance kernel for m. The snapshot loader uses it to
// alias a dataset straight out of a decoded file buffer; the storage
// must not be modified afterwards.
func NewFlatDataset(coords []float64, n, dim int, m Metric) (*FlatDataset, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("object: flat dataset: invalid shape %d x %d", n, dim)
	}
	if len(coords) != n*dim {
		return nil, fmt.Errorf("object: flat dataset: %d coordinates for shape %d x %d", len(coords), n, dim)
	}
	if m == nil {
		return nil, fmt.Errorf("object: flat dataset: nil metric")
	}
	f := &FlatDataset{coords: coords, n: n, dim: dim, kern: CompileKernel(m, dim)}
	f.initDerived()
	return f, nil
}

// Len returns the number of points.
func (f *FlatDataset) Len() int { return f.n }

// Dim returns the dimensionality.
func (f *FlatDataset) Dim() int { return f.dim }

// Kernel returns the compiled distance kernel.
func (f *FlatDataset) Kernel() *Kernel { return &f.kern }

// Metric returns the metric the kernel was compiled for.
func (f *FlatDataset) Metric() Metric { return f.kern.metric }

// Row returns the coordinates of point id as a subslice of the flat
// storage. The caller must not modify or grow it.
func (f *FlatDataset) Row(id int) []float64 {
	off := id * f.dim
	return f.coords[off : off+f.dim : off+f.dim]
}

// IsRow reports whether q is exactly the storage of Row(id) (not merely
// equal coordinates). Engines use it to recognise queries that are
// dataset rows, which is what unlocks the float32 fast path: a row's
// float32 image is stored, whereas an external query point would first
// have to be rounded, invalidating the filter's error analysis.
func (f *FlatDataset) IsRow(q []float64, id int) bool {
	if id < 0 || id >= f.n || len(q) != f.dim {
		return false
	}
	return &q[0] == &f.coords[id*f.dim]
}

// Point is Row typed as a Point, for Engine interoperability. Zero-copy.
func (f *FlatDataset) Point(id int) Point { return Point(f.Row(id)) }

// Points materialises one Point header per row, all aliasing the flat
// storage (no coordinate copies). The result is what APIs built around
// []Point need when the authoritative storage is already flat.
func (f *FlatDataset) Points() []Point {
	pts := make([]Point, f.n)
	for i := range pts {
		pts[i] = f.Point(i)
	}
	return pts
}

// Coords exposes the backing storage (read-only by convention) for
// callers that iterate rows by offset without per-row slicing. For
// Float32 datasets this is the derived float64 view.
func (f *FlatDataset) Coords() []float64 { return f.coords }

// Dist returns the true distance between points i and j.
func (f *FlatDataset) Dist(i, j int) float64 { return f.kern.dist(f.Row(i), f.Row(j)) }

// DistToPoint returns the true distance between point i and an arbitrary
// query vector q (len(q) must equal Dim).
func (f *FlatDataset) DistToPoint(i int, q []float64) float64 { return f.kern.dist(f.Row(i), q) }

// AppendRange appends to dst every point within r of q, excluding the
// point with id exclude (-1 for none), in ascending id order, and returns
// the extended slice. When q is itself the storage of row exclude the
// scan routes through the batched row filters (including the float32
// pre-filter when available); results are bit-identical either way.
func (f *FlatDataset) AppendRange(dst []Neighbor, q []float64, r float64, exclude int) []Neighbor {
	qid := -1
	if f.IsRow(q, exclude) {
		qid = exclude
	}
	return f.appendRows(dst, q, qid, 0, f.n, exclude, r)
}

// AppendRangeRows appends to dst every point with id in [lo, hi) within
// r of row qid (excluding exclude), in ascending id order. This is the
// contiguous-block entry the flat ε-join is built on.
func (f *FlatDataset) AppendRangeRows(dst []Neighbor, qid, lo, hi, exclude int, r float64) []Neighbor {
	return f.appendRows(dst, nil, qid, lo, hi, exclude, r)
}
