package object

import (
	"fmt"
	"math"
)

// Metric is a distance function over points. Implementations must satisfy
// the metric axioms (non-negativity, identity, symmetry, triangle
// inequality); the M-tree relies on the triangle inequality for pruning.
type Metric interface {
	// Dist returns the distance between a and b. Both points must share
	// the metric's expected dimensionality; behaviour is undefined (but
	// never a panic beyond slice bounds) otherwise.
	Dist(a, b Point) float64
	// Name returns a short, stable identifier such as "euclidean".
	Name() string
}

// CoordinatewiseMonotone marks metrics whose distance never decreases
// when one coordinate of either argument moves away from the other
// argument's coordinate while the rest stay fixed. For such metrics the
// distance from a point to its clamp into an axis-aligned box lower
// bounds the distance to every point in the box, which is what
// box-pruning indexes (the R-tree) rely on. All built-in metrics
// qualify; custom metrics must opt in by implementing the marker, and
// must only do so when the property genuinely holds — otherwise the
// R-tree silently prunes true neighbours.
type CoordinatewiseMonotone interface {
	Metric
	// CoordinatewiseMonotone is a marker method; implementations are
	// empty.
	CoordinatewiseMonotone()
}

// Euclidean is the L2 metric used by the paper for all numeric datasets.
type Euclidean struct{}

// Dist returns sqrt(sum((a_i-b_i)^2)).
func (Euclidean) Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric (paper Lemma 3 / Lemma 4(ii)).
type Manhattan struct{}

// Dist returns sum(|a_i-b_i|).
func (Manhattan) Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric, provided for completeness.
type Chebyshev struct{}

// Dist returns max(|a_i-b_i|).
func (Chebyshev) Dist(a, b Point) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Hamming counts the coordinates on which two points differ. It is the
// metric the paper uses for the categorical Cameras dataset, where each
// coordinate holds a category code.
type Hamming struct{}

// Dist returns the number of differing coordinates.
func (Hamming) Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		if a[i] != b[i] {
			s++
		}
	}
	return s
}

// Name implements Metric.
func (Hamming) Name() string { return "hamming" }

// CoordinatewiseMonotone marks the built-in metrics as safe for
// box-pruning indexes.
func (Euclidean) CoordinatewiseMonotone() {}

// CoordinatewiseMonotone implements CoordinatewiseMonotone.
func (Manhattan) CoordinatewiseMonotone() {}

// CoordinatewiseMonotone implements CoordinatewiseMonotone.
func (Chebyshev) CoordinatewiseMonotone() {}

// CoordinatewiseMonotone implements CoordinatewiseMonotone.
func (Hamming) CoordinatewiseMonotone() {}

// NonMetric marks distance functions that violate the metric axioms —
// in particular the triangle inequality — and therefore must be
// rejected by indexes whose pruning relies on it (the M-tree and the
// VP-tree). The embedding dissimilarities (Cosine, DotProduct) carry
// the marker: they are the native comparison for learned
// representations but are not metrics, so only scan-based backends
// (the flat engine and the coverage graph's flat batched join) can
// serve them exactly.
type NonMetric interface {
	Metric
	// NonMetric is a marker method; implementations are empty.
	NonMetric()
}

// TriangleSafe reports whether m may be used with triangle-inequality
// pruning indexes: built-in and custom metrics qualify unless they
// carry the NonMetric marker.
func TriangleSafe(m Metric) bool {
	_, nonMetric := m.(NonMetric)
	return !nonMetric
}

// Cosine is the cosine dissimilarity 1 − cos(a, b) = 1 − ⟨a,b⟩/(‖a‖‖b‖),
// the native comparison for learned embedding vectors. Range semantics:
// d ≤ r keeps every vector whose angle to the query is at most
// arccos(1−r), so r ∈ [0, 2] (0 keeps only parallel vectors, 1 keeps
// the half-space, 2 keeps everything). A zero vector has no direction;
// its dissimilarity to anything is defined as 1.
//
// Cosine is NOT a metric (the triangle inequality fails), so it carries
// the NonMetric marker and is rejected by the tree indexes; use the
// flat or coverage-graph backends, whose flat batched scan serves it
// exactly.
type Cosine struct{}

// Dist returns 1 − ⟨a,b⟩/(‖a‖‖b‖), or 1 when either vector is zero.
func (Cosine) Dist(a, b Point) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// NonMetric implements NonMetric: cosine dissimilarity violates the
// triangle inequality.
func (Cosine) NonMetric() {}

// DotProduct is the inner-product dissimilarity 1 − ⟨a,b⟩, the
// maximum-inner-product comparison rewritten as a dissimilarity so the
// range predicate d ≤ r selects exactly the vectors with ⟨q,x⟩ ≥ 1−r.
// It is intended for unit-normalised embeddings, where it equals half
// the squared Euclidean distance; on unnormalised data it can be
// negative and is still served exactly by the scan backends, but radius
// semantics are the caller's responsibility.
//
// DotProduct is NOT a metric; see Cosine for the backend restrictions.
type DotProduct struct{}

// Dist returns 1 − ⟨a,b⟩.
func (DotProduct) Dist(a, b Point) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return 1 - dot
}

// Name implements Metric.
func (DotProduct) Name() string { return "dot" }

// NonMetric implements NonMetric: inner-product dissimilarity violates
// every metric axiom except symmetry.
func (DotProduct) NonMetric() {}

// MetricByName resolves a metric from its Name(). It recognises
// "euclidean", "manhattan", "chebyshev", "hamming", "cosine" and "dot".
func MetricByName(name string) (Metric, error) {
	switch name {
	case "euclidean", "l2":
		return Euclidean{}, nil
	case "manhattan", "l1":
		return Manhattan{}, nil
	case "chebyshev", "linf":
		return Chebyshev{}, nil
	case "hamming":
		return Hamming{}, nil
	case "cosine":
		return Cosine{}, nil
	case "dot", "inner-product":
		return DotProduct{}, nil
	default:
		return nil, fmt.Errorf("object: unknown metric %q", name)
	}
}

// MaxPairwiseDist returns the largest pairwise distance in pts (the radius
// at which a single object covers everything). O(n^2); intended for small
// inputs and experiment setup.
func MaxPairwiseDist(pts []Point, m Metric) float64 {
	var best float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := m.Dist(pts[i], pts[j]); d > best {
				best = d
			}
		}
	}
	return best
}
