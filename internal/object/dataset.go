package object

import (
	"fmt"
	"math"
)

// Dataset bundles a point collection with optional human-readable labels
// and attribute names. Labels[i] describes Points[i] (e.g. a city or camera
// name); AttrNames describe the coordinates. Values, when non-nil, maps a
// categorical coordinate value back to its string form:
// Values[dim][int(code)] is the display string for that code.
type Dataset struct {
	Name      string
	Points    []Point
	Labels    []string
	AttrNames []string
	Values    [][]string
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Dim returns the dimensionality of the dataset (0 when empty).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Label returns the label of object id, or a synthetic "#id" when labels
// are absent.
func (d *Dataset) Label(id int) string {
	if id >= 0 && id < len(d.Labels) && d.Labels[id] != "" {
		return d.Labels[id]
	}
	return fmt.Sprintf("#%d", id)
}

// ValueString renders coordinate dim of object id, using the categorical
// value table when available.
func (d *Dataset) ValueString(id, dim int) string {
	v := d.Points[id][dim]
	if dim < len(d.Values) && d.Values[dim] != nil {
		if k := int(v); k >= 0 && k < len(d.Values[dim]) {
			return d.Values[dim][k]
		}
	}
	return fmt.Sprintf("%g", v)
}

// Bounds returns per-dimension [min, max] over all points.
func (d *Dataset) Bounds() (lo, hi Point) {
	dim := d.Dim()
	lo = make(Point, dim)
	hi = make(Point, dim)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for _, p := range d.Points {
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return lo, hi
}

// Normalize rescales every dimension to [0, 1] in place, mirroring the
// paper's preprocessing of the Cities dataset. Constant dimensions map
// to 0.
func (d *Dataset) Normalize() {
	lo, hi := d.Bounds()
	for _, p := range d.Points {
		for i := range p {
			span := hi[i] - lo[i]
			if span <= 0 {
				p[i] = 0
				continue
			}
			p[i] = (p[i] - lo[i]) / span
		}
	}
}

// Subset returns a new dataset containing only the objects with the given
// ids, in order. Labels and attribute metadata are carried over.
func (d *Dataset) Subset(ids []int) *Dataset {
	sub := &Dataset{
		Name:      d.Name,
		AttrNames: d.AttrNames,
		Values:    d.Values,
		Points:    make([]Point, 0, len(ids)),
	}
	if d.Labels != nil {
		sub.Labels = make([]string, 0, len(ids))
	}
	for _, id := range ids {
		sub.Points = append(sub.Points, d.Points[id])
		if d.Labels != nil {
			sub.Labels = append(sub.Labels, d.Labels[id])
		}
	}
	return sub
}
