package object

import "testing"

func TestDynDatasetLifecycle(t *testing.T) {
	d, err := NewDynDataset(Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 0 || d.Live() != 0 || d.Slots() != 0 {
		t.Fatal("empty dataset state wrong")
	}
	a, err := d.Append(Point{0.1, 0.2})
	if err != nil || a != 0 {
		t.Fatalf("first append: id=%d err=%v", a, err)
	}
	if d.Dim() != 2 {
		t.Fatalf("dim %d after first append", d.Dim())
	}
	if _, err := d.Append(Point{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := d.Append(Point{}); err == nil {
		t.Error("empty point accepted")
	}
	b, _ := d.Append(Point{0.3, 0.4})
	c, _ := d.Append(Point{0.5, 0.6})
	if b != 1 || c != 2 || d.Live() != 3 || d.Slots() != 3 {
		t.Fatalf("ids %d %d, live %d, slots %d", b, c, d.Live(), d.Slots())
	}
	if err := d.Delete(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(b); err == nil {
		t.Error("double delete accepted")
	}
	if err := d.Delete(99); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if d.Alive(b) || !d.Alive(a) || !d.Alive(c) || d.Live() != 2 {
		t.Fatal("alive bookkeeping wrong after delete")
	}
	// Tombstoned rows keep their slot and coordinates.
	if got := d.Point(b); !got.Equal(Point{0.3, 0.4}) {
		t.Errorf("tombstoned row changed: %v", got)
	}
	if got := d.Kernel().Dist(d.Row(a), d.Row(c)); got <= 0 {
		t.Errorf("kernel distance %g", got)
	}
}

func TestDynDatasetCompact(t *testing.T) {
	d, _ := NewDynDataset(Manhattan{})
	for i := 0; i < 6; i++ {
		if _, err := d.Append(Point{float64(i), float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{1, 4} {
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	flat, remap, err := d.CompactFlat()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() != 4 || flat.Dim() != 2 {
		t.Fatalf("compact shape %dx%d", flat.Len(), flat.Dim())
	}
	wantRemap := []int32{0, -1, 1, 2, -1, 3}
	for i, w := range wantRemap {
		if remap[i] != w {
			t.Fatalf("remap[%d]=%d, want %d", i, remap[i], w)
		}
	}
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		if !flat.Point(int(nw)).Equal(d.Point(old)) {
			t.Errorf("row %d→%d coordinates differ", old, nw)
		}
	}
	if flat.Metric().Name() != d.Metric().Name() {
		t.Error("metric not carried through compaction")
	}

	empty, _ := NewDynDataset(Euclidean{})
	if _, _, err := empty.CompactFlat(); err == nil {
		t.Error("compacting an empty dataset accepted")
	}
}

func TestDynFromFlat(t *testing.T) {
	flat, err := Flatten([]Point{{1, 2}, {3, 4}}, Chebyshev{})
	if err != nil {
		t.Fatal(err)
	}
	d := DynFromFlat(flat)
	if d.Live() != 2 || d.Dim() != 2 {
		t.Fatalf("live %d dim %d", d.Live(), d.Dim())
	}
	// The copy must be independent of the source storage.
	id, _ := d.Append(Point{5, 6})
	if id != 2 || flat.Len() != 2 {
		t.Fatal("append leaked into the source flat dataset")
	}
	if !d.Point(0).Equal(flat.Point(0)) {
		t.Error("copied coordinates differ")
	}
}
