package object

import "math"

// batch.go implements the one-vs-many kernel plans: evaluating one query
// row against many candidate rows without paying per-pair function-call
// and bounds-check overhead, and fusing the range threshold into the
// inner loop so rows that cannot qualify stop accumulating early.
//
// Exactness contract (mirrors kernel.go): the float64 batch bodies fold
// terms in exactly the scalar kernels' accumulation order, so RawBatch
// output and every surviving row of the filters are bit-identical to
// per-pair Raw calls. Early exit is sound for the monotone metrics
// because their terms are non-negative: each partial sum s satisfies
// fl(s+t) >= s for t >= 0, so once a partial value exceeds the
// threshold the completed value would too — rejected rows are true
// rejects, and accepted rows were folded to completion in the reference
// order. Cosine and dot-product terms are signed, so their bodies never
// early-exit; they instead amortise the norm work (see flat32.go for
// the norm-cached dataset-level paths).

// RawBatch evaluates Raw(q, row) for every row of the contiguous
// row-major block rows (len(rows) must be len(out)*Dim()) and stores
// the results in out. Each out[j] is bit-identical to
// Raw(q, rows[j*dim:(j+1)*dim]).
func (k *Kernel) RawBatch(q, rows []float64, out []float64) {
	k.rawBatch(q, rows, k.dim, out)
}

// Within reports Raw(q, row) <= rawR, stopping the accumulation early
// when the partial value already exceeds rawR (monotone metrics only;
// the answer is always exact).
func (k *Kernel) Within(q, row []float64, rawR float64) bool {
	return k.within(q, row, rawR)
}

// FilterWithin appends base+j to dst for every row j of the contiguous
// row-major block rows whose surrogate distance to q is <= rawR, in
// ascending row order, and returns the extended slice. The accepted set
// is bit-identical to filtering per-pair Raw calls against the same
// threshold; callers following the RawThreshold protocol must still
// re-check survivors with Finish.
func (k *Kernel) FilterWithin(q, rows []float64, base int32, rawR float64, dst []int32) []int32 {
	dim := k.dim
	within := k.within
	n := len(rows) / dim
	for j, off := 0, 0; j < n; j, off = j+1, off+dim {
		if within(q, rows[off:off+dim:off+dim], rawR) {
			dst = append(dst, base+int32(j))
		}
	}
	return dst
}

// FilterGather is FilterWithin over scattered candidates: ids indexes
// rows of the full row-major coords array. Surviving ids are appended
// to dst in their input order.
func (k *Kernel) FilterGather(q, coords []float64, ids []int32, rawR float64, dst []int32) []int32 {
	dim := k.dim
	within := k.within
	for _, id := range ids {
		off := int(id) * dim
		if within(q, coords[off:off+dim:off+dim], rawR) {
			dst = append(dst, id)
		}
	}
	return dst
}

// compileBatch installs the one-vs-many plans matching the scalar
// bodies CompileKernel selected. Custom metrics get generic loops over
// the already-installed raw so the batch API works unconditionally.
func compileBatch(k *Kernel) {
	switch k.metric.(type) {
	case Euclidean:
		k.rawBatch = rawBatchSqEuclidean
		k.within = withinSqEuclidean
	case Manhattan:
		k.rawBatch = rawBatchManhattan
		k.within = withinManhattan
	case Chebyshev:
		k.rawBatch = rawBatchChebyshev
		k.within = withinChebyshev
	case Hamming:
		k.rawBatch = rawBatchHamming
		k.within = withinHamming
	case Cosine:
		k.rawBatch = rawBatchCosine
		k.within = withinCosine
	case DotProduct:
		k.rawBatch = rawBatchDot
		k.within = withinDot
	default:
		raw := k.raw
		k.rawBatch = func(q, rows []float64, dim int, out []float64) {
			for j := range out {
				off := j * dim
				out[j] = raw(q, rows[off:off+dim:off+dim])
			}
		}
		k.within = func(q, row []float64, rawR float64) bool {
			return raw(q, row) <= rawR
		}
	}
}

// blockDim is the early-exit granularity of the monotone within bodies:
// the partial value is tested against the threshold once per blockDim
// folded terms, balancing wasted work past the decision point against
// branch overhead on rows that need the full fold.
const blockDim = 16

func rawBatchSqEuclidean(q, rows []float64, dim int, out []float64) {
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var s float64
		for i, qi := range q {
			d := qi - row[i]
			s += d * d
		}
		out[j] = s
	}
}

func withinSqEuclidean(q, row []float64, rawR float64) bool {
	var s float64
	dim := len(q)
	i := 0
	for i+blockDim <= dim {
		for e := i + blockDim; i < e; i++ {
			d := q[i] - row[i]
			s += d * d
		}
		if s > rawR {
			return false
		}
	}
	for ; i < dim; i++ {
		d := q[i] - row[i]
		s += d * d
	}
	return s <= rawR
}

func rawBatchManhattan(q, rows []float64, dim int, out []float64) {
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var s float64
		for i, qi := range q {
			s += math.Abs(qi - row[i])
		}
		out[j] = s
	}
}

func withinManhattan(q, row []float64, rawR float64) bool {
	var s float64
	dim := len(q)
	i := 0
	for i+blockDim <= dim {
		for e := i + blockDim; i < e; i++ {
			s += math.Abs(q[i] - row[i])
		}
		if s > rawR {
			return false
		}
	}
	for ; i < dim; i++ {
		s += math.Abs(q[i] - row[i])
	}
	return s <= rawR
}

func rawBatchChebyshev(q, rows []float64, dim int, out []float64) {
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var m float64
		for i, qi := range q {
			if d := math.Abs(qi - row[i]); d > m {
				m = d
			}
		}
		out[j] = m
	}
}

func withinChebyshev(q, row []float64, rawR float64) bool {
	var m float64
	dim := len(q)
	i := 0
	for i+blockDim <= dim {
		for e := i + blockDim; i < e; i++ {
			if d := math.Abs(q[i] - row[i]); d > m {
				m = d
			}
		}
		if m > rawR {
			return false
		}
	}
	for ; i < dim; i++ {
		if d := math.Abs(q[i] - row[i]); d > m {
			m = d
		}
	}
	return m <= rawR
}

func rawBatchHamming(q, rows []float64, dim int, out []float64) {
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var s float64
		for i, qi := range q {
			if qi != row[i] {
				s++
			}
		}
		out[j] = s
	}
}

func withinHamming(q, row []float64, rawR float64) bool {
	var s float64
	dim := len(q)
	i := 0
	for i+blockDim <= dim {
		for e := i + blockDim; i < e; i++ {
			if q[i] != row[i] {
				s++
			}
		}
		if s > rawR {
			return false
		}
	}
	for ; i < dim; i++ {
		if q[i] != row[i] {
			s++
		}
	}
	return s <= rawR
}

// The cosine/dot batch bodies match the scalar reference accumulator by
// accumulator: cosineN folds dot, ‖a‖² and ‖b‖² in one interleaved
// loop, but each accumulator only ever sees its own terms in index
// order, so computing them in separate loops produces bit-identical
// values. That is what lets the batch path hoist the query norm out of
// the row loop (and flat32.go additionally cache the per-row norms)
// without breaking the exactness contract.

func rawBatchCosine(q, rows []float64, dim int, out []float64) {
	var na float64
	for _, qi := range q {
		na += qi * qi
	}
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var dot, nb float64
		for i, qi := range q {
			dot += qi * row[i]
			nb += row[i] * row[i]
		}
		if na == 0 || nb == 0 {
			out[j] = 1
			continue
		}
		out[j] = 1 - dot/math.Sqrt(na*nb)
	}
}

func withinCosine(q, row []float64, rawR float64) bool {
	var dot, na, nb float64
	for i, qi := range q {
		dot += qi * row[i]
		na += qi * qi
		nb += row[i] * row[i]
	}
	if na == 0 || nb == 0 {
		return 1 <= rawR
	}
	return 1-dot/math.Sqrt(na*nb) <= rawR
}

func rawBatchDot(q, rows []float64, dim int, out []float64) {
	for j, off := 0, 0; j < len(out); j, off = j+1, off+dim {
		row := rows[off : off+dim : off+dim]
		var dot float64
		for i, qi := range q {
			dot += qi * row[i]
		}
		out[j] = 1 - dot
	}
}

func withinDot(q, row []float64, rawR float64) bool {
	var dot float64
	for i, qi := range q {
		dot += qi * row[i]
	}
	return 1-dot <= rawR
}
