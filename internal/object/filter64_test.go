package object

import (
	"math"
	"math/rand/v2"
	"testing"
)

// filter64Dims straddles the filter64MinDim gate (15/16) on top of the
// float32 suite's dimension spread, so both the plain serial scans and
// the 4-accumulator pre-filter scans are pinned by the same oracle.
var filter64Dims = []int{2, 3, 7, 15, 16, 64, 128, 768}

// TestFloat64FilterBitIdentical pins the float64 pre-filter contract:
// a Float64 dataset's range scans — which above filter64MinDim route
// through the widened 4-accumulator filters of filter64.go — report
// exactly the rows the per-pair reference protocol Finish(Raw(q, row))
// <= r accepts, with bit-identical distances, for radii sitting on and
// around exact row distances (the widened threshold's boundary).
func TestFloat64FilterBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	for _, m := range []Metric{Euclidean{}, Cosine{}, DotProduct{}} {
		for _, dim := range filter64Dims {
			n := 48
			pts := embeddingPoints(rng, n, dim)
			f, err := Flatten(pts, m)
			if err != nil {
				t.Fatal(err)
			}
			k := CompileKernel(m, dim)
			for trial := 0; trial < 40; trial++ {
				qid := rng.IntN(n)
				q := f.Row(qid)
				d := f.Dist(qid, rng.IntN(n))
				radii := []float64{d, math.Nextafter(d, math.Inf(1)), math.Nextafter(d, math.Inf(-1)), d * 1.001, 0.5}
				for _, r := range radii {
					var want []Neighbor
					for id := 0; id < n; id++ {
						if id == qid {
							continue
						}
						if dd := k.Finish(k.Raw(q, f.Row(id))); dd <= r {
							want = append(want, Neighbor{ID: id, Dist: dd})
						}
					}
					// Row-query and external-query entries must both agree:
					// the float64 filters serve qid < 0 scans too.
					for pass, got := range [][]Neighbor{
						f.AppendRangeRows(nil, qid, 0, n, qid, r),
						f.AppendRange(nil, q, r, qid),
					} {
						if len(got) != len(want) {
							t.Fatalf("%s/%d qid=%d r=%v pass=%d: %d hits, want %d", m.Name(), dim, qid, r, pass, len(got), len(want))
						}
						for i := range got {
							if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
								t.Fatalf("%s/%d qid=%d r=%v pass=%d: hit %d = %+v want %+v", m.Name(), dim, qid, r, pass, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestFloat64GatherMatchesScalar covers the AppendRangeIDs float64
// Euclidean gather (the updater's high-dimensional repair probes)
// against the per-pair reference, in input candidate order.
func TestFloat64GatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 61))
	for _, dim := range filter64Dims {
		n := 40
		pts := embeddingPoints(rng, n, dim)
		f, err := Flatten(pts, Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		k := CompileKernel(Euclidean{}, dim)
		for trial := 0; trial < 30; trial++ {
			qid := rng.IntN(n)
			q := f.Row(qid)
			ids := rng.Perm(n)[:n/2]
			ids32 := make([]int32, len(ids))
			for i, id := range ids {
				ids32[i] = int32(id)
			}
			r := f.Dist(qid, ids[0])
			var want []Neighbor
			for _, id32 := range ids32 {
				id := int(id32)
				if id == qid {
					continue
				}
				if dd := k.Finish(k.Raw(q, f.Row(id))); dd <= r {
					want = append(want, Neighbor{ID: id, Dist: dd})
				}
			}
			got := f.AppendRangeIDs(nil, nil, qid, ids32, qid, r)
			if len(got) != len(want) {
				t.Fatalf("dim=%d qid=%d: gather %v want %v", dim, qid, got, want)
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("dim=%d qid=%d: gather hit %d = %+v want %+v", dim, qid, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWithin4SqEuclideanNeverFalselyRejects drives the raw filter
// directly with adversarial magnitude mixes: whenever the reference
// squared distance is within rawR, the widened filter must pass.
func TestWithin4SqEuclideanNeverFalselyRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 71))
	for _, dim := range filter64Dims {
		k := CompileKernel(Euclidean{}, dim)
		n := 64
		q, rows := randomRows(rng, n, dim, false)
		for j := 0; j < n; j++ {
			row := rows[j*dim : (j+1)*dim]
			raw := k.Raw(q, row)
			if math.IsInf(raw, 0) || math.IsNaN(raw) {
				continue
			}
			for _, rawR := range []float64{raw, math.Nextafter(raw, math.Inf(1)), raw * 2} {
				if rawR < 0x1p-80 {
					continue // below the dispatch gate
				}
				wide := rawR * (1 + filterSlack64(dim))
				if !within4SqEuclidean(q, row, wide) {
					t.Fatalf("dim=%d row=%d: filter rejected raw=%v at rawR=%v", dim, j, raw, rawR)
				}
			}
		}
	}
}
