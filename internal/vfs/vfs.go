// Package vfs is the narrow filesystem seam the durability stack
// (internal/wal, internal/snap, disc.OpenUpdater, internal/manager)
// writes and recovers through. Production code uses the OS
// implementation; the fault-injection suites substitute
// faultio.DirFS to schedule EIO, ENOSPC, torn writes and rename
// failures on exactly the calls a real disk can fail — which is what
// lets the chaos properties prove per-dataset fault isolation without
// a real bad disk.
//
// The interface is deliberately minimal: only the operations the
// durability code actually performs. Paths are ordinary OS paths (the
// package does not virtualise a root); an implementation may rewrite
// or gate them, but the OS implementation passes them straight
// through, so vfs.OS behaves byte-for-byte like the os package calls
// it replaces.
package vfs

import (
	"io"
	"os"
)

// File is the writable-file surface the write-ahead log appends
// through — identical to wal.File, so implementations satisfy both.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// TempFile is a File that knows its own name, as returned by
// CreateTemp; the atomic-save protocol renames it into place.
type TempFile interface {
	File
	Name() string
}

// FS is the filesystem surface of the durability stack. All methods
// must be safe for concurrent use.
type FS interface {
	// OpenAppend opens name for appending; with create true the file
	// is created (or truncated) instead. Mirrors the WAL's two open
	// modes.
	OpenAppend(name string, create bool) (File, error)
	// CreateTemp creates a new temporary file in dir with a name built
	// from pattern, as os.CreateTemp does.
	CreateTemp(dir, pattern string) (TempFile, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name, creating or truncating it.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// ReadDir lists the directory entries of name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes name.
	Stat(name string) (os.FileInfo, error)
	// Rename atomically moves oldpath over newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory so its entries (a just-created,
	// just-renamed or just-removed file) survive a power loss.
	SyncDir(dir string) error
}

// OS is the production implementation: every method is the
// corresponding os-package call.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenAppend(name string, create bool) (File, error) {
	if create {
		return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	}
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) CreateTemp(dir, pattern string) (TempFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
