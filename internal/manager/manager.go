// Package manager supervises the lifecycle of every dataset a server
// process owns, so one dataset's disk failing — an EIO mid-append, an
// ENOSPC during checkpoint, a flipped bit discovered at boot — never
// alters another dataset's responses.
//
// Each dataset moves through a small state machine, driven by a
// per-dataset supervisor goroutine:
//
//	loading ──ok──▶ ready ──storage fault──▶ loading (recovery)
//	   │                                        │
//	   ├─retries exhausted, last-good snapshot──▶ degraded (read-only)
//	   │                                        │ (keeps retrying)
//	   └──interior corruption──▶ quarantined ◀──┘
//	                                  │ operator Unquarantine
//	                                  ▼
//	                               loading
//
// Recovery retries transient failures with bounded exponential backoff
// plus jitter; interior corruption (a checksum mismatch, a sequence
// gap, a log whose snapshot is gone) is not retried — the dataset is
// quarantined loudly: a QUARANTINE sidecar file records the reason on
// disk, a counter and a structured log line record it for operators,
// and every request for that dataset (and only that dataset) answers
// 503 until an operator intervenes. When a readable last-good snapshot
// exists, a dataset whose log cannot be reopened serves read-only
// selections from the snapshot instead of going dark (degraded mode).
//
// The manager also owns memory-only datasets (no backing files); they
// are born ready and have no storage to fail, so their supervisor only
// waits for shutdown. See docs/OPERATIONS.md for the operator's view.
package manager

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/vfs"
	"github.com/discdiversity/disc/internal/wal"
)

// State names a dataset lifecycle state. The values are wire-stable:
// they appear in /readyz, dataset info bodies and metric labels.
type State string

const (
	// StateLoading covers initial recovery and every re-open after a
	// storage fault; requests answer 503 with a Retry-After hint.
	StateLoading State = "loading"
	// StateReady serves reads and mutations.
	StateReady State = "ready"
	// StateDegraded serves read-only selections from the last good
	// snapshot while recovery keeps retrying; mutations answer 503.
	StateDegraded State = "degraded"
	// StateQuarantined marks unrecoverable corruption: everything
	// answers 503 until an operator runs the unquarantine runbook.
	StateQuarantined State = "quarantined"
	// StateClosed is terminal (manager shutdown).
	StateClosed State = "closed"
)

// states enumerates every state, for the one-hot state gauges.
var states = []State{StateLoading, StateReady, StateDegraded, StateQuarantined, StateClosed}

// Config parameterises a Manager. The zero value is a memory-only
// manager (no Dir): datasets live and die with the process.
type Config struct {
	// Dir is the durable storage directory; empty means memory-only
	// datasets. With Homes false the layout is flat
	// (<dir>/<name>.discsnap, <dir>/<name>.wal.*, <dir>/<name>.QUARANTINE);
	// with Homes true each dataset owns a home directory
	// (<dir>/<name>/current.discsnap, <dir>/<name>/wal.*,
	// <dir>/<name>/QUARANTINE).
	Dir   string
	Homes bool

	// Fsync and FsyncInterval configure the write-ahead logs of durable
	// datasets (see disc.FsyncPolicy).
	Fsync         disc.FsyncPolicy
	FsyncInterval time.Duration

	// FS is the storage filesystem; nil means the real one. The chaos
	// properties inject a faultio.DirFS here.
	FS vfs.FS

	// Logger receives quarantine and recovery reports; nil means
	// slog.Default.
	Logger *slog.Logger

	// Recovery backoff: the delay starts at BackoffBase, doubles per
	// failed attempt up to BackoffCap (full jitter applied), and after
	// MaxAttempts consecutive failures the dataset parks — degraded when
	// a last-good snapshot serves, otherwise still loading — and keeps
	// retrying at the cap. Zeroes mean 50ms / 5s / 5.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	MaxAttempts int
}

// Manager supervises a set of named datasets. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	datasets map[string]*Dataset
	closed   bool
}

// New builds a Manager; no I/O happens until Create or Recover.
func New(cfg Config) *Manager {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap < cfg.BackoffBase {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	return &Manager{cfg: cfg, datasets: make(map[string]*Dataset)}
}

// Durable reports whether datasets are backed by on-disk state.
func (m *Manager) Durable() bool { return m.cfg.Dir != "" }

func (m *Manager) fs() vfs.FS {
	if m.cfg.FS != nil {
		return m.cfg.FS
	}
	return vfs.OS
}

func (m *Manager) logger() *slog.Logger {
	if m.cfg.Logger != nil {
		return m.cfg.Logger
	}
	return slog.Default()
}

// dsPaths are the on-disk homes of one durable dataset.
type dsPaths struct {
	snap string // checkpoint snapshot
	wal  string // write-ahead log base path (segments add .<epoch>-<seq>)
	quar string // quarantine sidecar
	home string // directory that must exist before the first write
}

func (m *Manager) paths(name string) dsPaths {
	if m.cfg.Homes {
		home := filepath.Join(m.cfg.Dir, name)
		return dsPaths{
			snap: filepath.Join(home, "current.discsnap"),
			wal:  filepath.Join(home, "wal"),
			quar: filepath.Join(home, "QUARANTINE"),
			home: home,
		}
	}
	return dsPaths{
		snap: filepath.Join(m.cfg.Dir, name+".discsnap"),
		wal:  filepath.Join(m.cfg.Dir, name+".wal"),
		quar: filepath.Join(m.cfg.Dir, name+".QUARANTINE"),
		home: m.cfg.Dir,
	}
}

// ErrNotFound reports a name no dataset answers to; ErrExists a create
// colliding with a registered dataset or with on-disk durable state.
var (
	ErrNotFound = errors.New("manager: no such dataset")
	ErrExists   = errors.New("manager: dataset already exists")
)

// UnavailableError explains why a dataset cannot serve a request right
// now: its state, the recovery/quarantine reason, and how long a
// client should wait before retrying. Servers map it to 503 with a
// Retry-After header.
type UnavailableError struct {
	Dataset    string
	State      State
	Reason     string
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	msg := fmt.Sprintf("dataset %q is %s", e.Dataset, e.State)
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	return msg
}

// openOpts assembles the disc options for opening a durable dataset.
func (m *Manager) openOpts(metric disc.Metric) []disc.Option {
	opts := []disc.Option{disc.WithMetric(metric), disc.WithFsync(m.cfg.Fsync)}
	if m.cfg.FsyncInterval > 0 {
		opts = append(opts, disc.WithFsyncInterval(m.cfg.FsyncInterval))
	}
	if m.cfg.FS != nil {
		opts = append(opts, disc.WithStorageFS(m.cfg.FS))
	}
	return opts
}

// Create registers a new dataset maintaining radius r under the named
// metric, seeded with points (which may be empty). Durable managers
// refuse names whose on-disk state a previous life left behind — that
// is Recover's job, and seeding on top of it would corrupt the
// recovered history (ErrExists). The dataset is ready on return.
func (m *Manager) Create(name, metricName string, r float64, points []disc.Point) (*Dataset, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("manager: closed")
	}
	if _, exists := m.datasets[name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	m.mu.Unlock()

	var u *disc.Updater
	p := m.paths(name)
	if m.Durable() {
		if err := m.refuseLeftoverState(name, p); err != nil {
			return nil, err
		}
		if m.cfg.Homes {
			if err := m.fs().MkdirAll(p.home, 0o755); err != nil {
				return nil, err
			}
		}
		u, err = disc.OpenUpdater(p.snap, p.wal, r, m.openOpts(metric)...)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			if _, err := u.Insert(pt); err != nil {
				u.Close()
				return nil, err
			}
		}
		u.Flush()
	} else {
		u, err = disc.NewUpdater(points, r, disc.WithMetric(metric))
		if err != nil {
			return nil, err
		}
	}

	d := m.newDataset(name, p)
	d.state = StateReady
	d.metric = metricName
	d.radius = r
	d.upd = u

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		u.Close()
		return nil, fmt.Errorf("manager: closed")
	}
	if _, exists := m.datasets[name]; exists {
		m.mu.Unlock()
		u.Close()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	m.datasets[name] = d
	m.mu.Unlock()
	setStateGauge(name, StateReady)
	go d.supervise()
	return d, nil
}

// refuseLeftoverState errors when durable state already exists on disk
// under this name (checkpoint, log segments, or a quarantine sidecar).
func (m *Manager) refuseLeftoverState(name string, p dsPaths) error {
	fsys := m.fs()
	if _, err := fsys.Stat(p.quar); err == nil {
		return fmt.Errorf("%w: %q is quarantined on disk (%s); run the unquarantine runbook", ErrExists, name, p.quar)
	}
	if _, err := fsys.Stat(p.snap); err == nil {
		return fmt.Errorf("%w: %q has a checkpoint on disk; restart with recovery to resume it", ErrExists, name)
	}
	if _, err := wal.DescribeFS(fsys, p.wal); err == nil {
		return fmt.Errorf("%w: %q has a write-ahead log on disk; restart with recovery to resume it", ErrExists, name)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Get returns the named dataset, or ErrNotFound.
func (m *Manager) Get(name string) (*Dataset, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return d, nil
}

// List returns every dataset, sorted by name.
func (m *Manager) List() []*Dataset {
	m.mu.Lock()
	ds := make([]*Dataset, 0, len(m.datasets))
	for _, d := range m.datasets {
		ds = append(ds, d)
	}
	m.mu.Unlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
	return ds
}

// States reports each dataset's current state and reason — the /readyz
// payload.
func (m *Manager) States() map[string]DatasetStatus {
	out := make(map[string]DatasetStatus)
	for _, d := range m.List() {
		st, reason := d.Status()
		out[d.name] = DatasetStatus{State: st, Reason: reason}
	}
	return out
}

// DatasetStatus is one entry of States.
type DatasetStatus struct {
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// Recover scans the storage directory for datasets a previous process
// left behind and recovers each one independently, under its own
// supervisor: a dataset that needs ten backoff retries — or that turns
// out to be corrupt and is quarantined — does not delay or fail the
// others. It blocks until every discovered dataset settles (ready,
// degraded, parked retrying, or quarantined) and returns how many are
// serving (ready or degraded). The scan itself failing (the directory
// unreadable) is the only error.
func (m *Manager) Recover() (int, error) {
	if !m.Durable() {
		return 0, nil
	}
	names, err := m.scan()
	if err != nil {
		return 0, err
	}
	var spawned []*Dataset
	m.mu.Lock()
	for _, name := range names {
		if _, exists := m.datasets[name]; exists {
			m.mu.Unlock()
			return 0, fmt.Errorf("manager: dataset %q already loaded", name)
		}
		d := m.newDataset(name, m.paths(name))
		d.state = StateLoading
		m.datasets[name] = d
		spawned = append(spawned, d)
	}
	m.mu.Unlock()
	for _, d := range spawned {
		setStateGauge(d.name, StateLoading)
		go d.supervise()
	}
	serving := 0
	for _, d := range spawned {
		<-d.settled
		if st, _ := d.Status(); st == StateReady || st == StateDegraded {
			serving++
		}
	}
	return serving, nil
}

// scan lists the dataset names present on disk, in sorted order.
// Invalid names (anything ValidateName rejects — a stray "..", a
// nested path) are skipped with a warning rather than trusted: the
// scan feeds filepath.Join.
func (m *Manager) scan() ([]string, error) {
	entries, err := m.fs().ReadDir(m.cfg.Dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	found := map[string]bool{}
	for _, e := range entries {
		n := e.Name()
		if m.cfg.Homes {
			if e.IsDir() {
				found[n] = true
			}
			continue
		}
		switch {
		case strings.HasSuffix(n, ".discsnap"):
			found[strings.TrimSuffix(n, ".discsnap")] = true
		case strings.HasSuffix(n, ".QUARANTINE"):
			found[strings.TrimSuffix(n, ".QUARANTINE")] = true
		default:
			if i := strings.Index(n, ".wal."); i > 0 {
				found[n[:i]] = true
			}
		}
	}
	names := make([]string, 0, len(found))
	for n := range found {
		if err := ValidateName(n); err != nil {
			m.logger().Warn("skipping dataset with invalid name", "name", n, "err", err)
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Unquarantine lifts a quarantine after an operator has repaired or
// replaced the damaged files (see docs/OPERATIONS.md): the sidecar is
// removed and the dataset re-enters recovery. It returns once the
// dataset settles again — ready, degraded, or re-quarantined if the
// state is still bad.
func (m *Manager) Unquarantine(name string) error {
	d, err := m.Get(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if d.state != StateQuarantined {
		st := d.state
		d.mu.Unlock()
		return fmt.Errorf("manager: dataset %q is %s, not quarantined", name, st)
	}
	if err := m.fs().Remove(d.paths.quar); err != nil && !errors.Is(err, fs.ErrNotExist) {
		d.mu.Unlock()
		return err
	}
	d.state = StateLoading
	d.reason = ""
	d.resetSettle()
	d.mu.Unlock()
	setStateGauge(name, StateLoading)
	m.logger().Info("dataset unquarantined", "dataset", name)
	d.kickNow()
	<-d.settledCh()
	return nil
}

// Close stops every supervisor and closes every dataset's write-ahead
// log, syncing acknowledged mutations. In-memory state stays readable
// (matching disc.Updater.Close), but mutations fail afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	ds := make([]*Dataset, 0, len(m.datasets))
	for _, d := range m.datasets {
		ds = append(ds, d)
	}
	m.mu.Unlock()
	var first error
	for _, d := range ds {
		if err := d.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
