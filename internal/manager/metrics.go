package manager

import (
	"github.com/discdiversity/disc/internal/telemetry"
)

// Lifecycle metrics, exposed at GET /metrics alongside the request and
// durability series (see docs/OBSERVABILITY.md).
var (
	metRecoveries = telemetry.Default().Counter("disc_dataset_recoveries_total",
		"Successful dataset recoveries (transitions into ready).")
	metRetries = telemetry.Default().Counter("disc_dataset_recovery_retries_total",
		"Recovery attempts that failed with a retryable error (backoff applied).")
	metQuarantines = telemetry.Default().Counter("disc_dataset_quarantines_total",
		"Datasets quarantined for unrecoverable corruption since process start.")
	metDegraded = telemetry.Default().Counter("disc_dataset_degraded_total",
		"Transitions into degraded (read-only) serving since process start.")
	metFaults = telemetry.Default().Counter("disc_dataset_storage_faults_total",
		"Runtime storage faults reported against serving datasets.")
)

// setStateGauge publishes a dataset's state as one-hot gauges:
// disc_dataset_state{dataset="X",state="ready"} is 1 for the current
// state and 0 for the rest, so a scrape sees exactly one state per
// dataset. Cardinality is datasets × 5 — bounded by the operator's own
// dataset count.
func setStateGauge(name string, st State) {
	reg := telemetry.Default()
	for _, s := range states {
		g := reg.Gauge(`disc_dataset_state{dataset="`+name+`",state="`+string(s)+`"}`,
			"Dataset lifecycle state (one-hot per dataset; see docs/OPERATIONS.md).")
		if s == st {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
}
