package manager

import (
	"fmt"
	"path/filepath"
	"strings"
)

// ValidateName rejects empty names and anything that is not a plain
// path component: dataset names become file and directory names
// (<dir>/<name>.discsnap, <dir>/<name>/wal), so separators, "." and
// ".." must never reach filepath.Join where they could escape the
// storage directory. Every route that parses a {name} and every boot
// scan shares this one validator.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("dataset name required")
	}
	// Backslash is rejected explicitly: it is not a separator on this
	// platform's filepath, but datasets may be copied to one where it
	// is.
	if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("dataset name %q must be a plain path component (no separators)", name)
	}
	return nil
}
