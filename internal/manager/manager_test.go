package manager

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/faultio"
)

// fastCfg returns a Config tuned for tests: millisecond backoff so a
// park-after-retries transition happens in tens of milliseconds, not
// tens of seconds.
func fastCfg(dir string) Config {
	return Config{
		Dir:         dir,
		Fsync:       disc.FsyncAlways,
		BackoffBase: 2 * time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
		MaxAttempts: 3,
	}
}

func seedPoints(n int) []disc.Point {
	pts := make([]disc.Point, n)
	for i := range pts {
		pts[i] = disc.Point{float64(i) * 3, float64(i%3) * 3}
	}
	return pts
}

// waitState polls until the dataset reaches the wanted state or the
// deadline passes.
func waitState(t *testing.T, d *Dataset, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := d.Status(); st == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, reason := d.Status()
	t.Fatalf("dataset %q never reached %s; stuck at %s (%s)", d.Name(), want, st, reason)
}

func TestManagerMemoryLifecycle(t *testing.T) {
	m := New(Config{})
	d, err := m.Create("mem", "euclidean", 2.0, seedPoints(6))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if st, _ := d.Status(); st != StateReady {
		t.Fatalf("state = %s, want ready", st)
	}
	u, err := d.Updater()
	if err != nil {
		t.Fatalf("Updater: %v", err)
	}
	if u.Len() != 6 {
		t.Fatalf("Len = %d, want 6", u.Len())
	}
	if _, err := m.Create("mem", "euclidean", 2.0, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create err = %v, want ErrExists", err)
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown err = %v, want ErrNotFound", err)
	}
	if err := m.Unquarantine("mem"); err == nil || !strings.Contains(err.Error(), "not quarantined") {
		t.Fatalf("Unquarantine on ready dataset err = %v, want 'not quarantined'", err)
	}
	states := m.States()
	if states["mem"].State != StateReady {
		t.Fatalf("States = %+v, want mem ready", states)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st, _ := d.Status(); st != StateClosed {
		t.Fatalf("state after Close = %s, want closed", st)
	}
}

func TestManagerRecoverMultipleDatasets(t *testing.T) {
	dir := t.TempDir()
	m := New(fastCfg(dir))
	counts := map[string]int{"alpha": 5, "beta": 7, "gamma": 3}
	for name, n := range counts {
		if _, err := m.Create(name, "euclidean", 2.0, seedPoints(n)); err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := New(fastCfg(dir))
	defer m2.Close()
	serving, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if serving != 3 {
		t.Fatalf("Recover serving = %d, want 3", serving)
	}
	for name, n := range counts {
		d, err := m2.Get(name)
		if err != nil {
			t.Fatalf("Get %s: %v", name, err)
		}
		if st, reason := d.Status(); st != StateReady {
			t.Fatalf("%s state = %s (%s), want ready", name, st, reason)
		}
		if got := d.Info().Live; got != n {
			t.Fatalf("%s Live = %d, want %d", name, got, n)
		}
	}
	// Durable creates must refuse names with on-disk state.
	if _, err := m2.Create("alpha", "euclidean", 2.0, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over loaded dataset err = %v, want ErrExists", err)
	}
}

func TestManagerQuarantineAndUnquarantine(t *testing.T) {
	dir := t.TempDir()
	m := New(fastCfg(dir))
	d, err := m.Create("victim", "euclidean", 2.0, seedPoints(8))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	u, err := d.Updater()
	if err != nil {
		t.Fatalf("Updater: %v", err)
	}
	if err := u.Checkpoint(d.CheckpointPath()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snapPath := filepath.Join(dir, "victim.discsnap")
	good, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	// Flip a byte in the snapshot's interior: checksummed payload, so
	// the boot scrub must refuse it as corruption, not retry it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(snapPath, bad, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	m2 := New(fastCfg(dir))
	serving, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if serving != 0 {
		t.Fatalf("Recover serving = %d, want 0 (quarantined)", serving)
	}
	d2, err := m2.Get("victim")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	st, reason := d2.Status()
	if st != StateQuarantined || reason == "" {
		t.Fatalf("state = %s (%q), want quarantined with a reason", st, reason)
	}
	if _, err := d2.Updater(); err == nil {
		t.Fatal("Updater on quarantined dataset succeeded")
	} else {
		var ue *UnavailableError
		if !errors.As(err, &ue) || ue.State != StateQuarantined {
			t.Fatalf("Updater err = %v, want UnavailableError{quarantined}", err)
		}
	}
	sidecar := filepath.Join(dir, "victim.QUARANTINE")
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A reboot must not clear the quarantine: the sidecar keeps the
	// dataset out even though we also repair the snapshot below.
	if err := os.WriteFile(snapPath, good, 0o644); err != nil {
		t.Fatalf("repair snapshot: %v", err)
	}
	m3 := New(fastCfg(dir))
	defer m3.Close()
	if serving, err := m3.Recover(); err != nil || serving != 0 {
		t.Fatalf("Recover after repair-without-unquarantine = (%d, %v), want (0, nil)", serving, err)
	}
	d3, _ := m3.Get("victim")
	if st, _ := d3.Status(); st != StateQuarantined {
		t.Fatalf("state after reboot = %s, want quarantined (sidecar must persist)", st)
	}

	// The operator runbook: repair the files, then lift the quarantine.
	if err := m3.Unquarantine("victim"); err != nil {
		t.Fatalf("Unquarantine: %v", err)
	}
	waitState(t, d3, StateReady)
	if got := d3.Info().Live; got != 8 {
		t.Fatalf("Live after unquarantine = %d, want 8", got)
	}
	if _, err := os.Stat(sidecar); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sidecar still present after unquarantine: %v", err)
	}
}

func TestManagerDegradedServesLastSnapshot(t *testing.T) {
	dir := t.TempDir()
	m := New(fastCfg(dir))
	d, err := m.Create("deg", "euclidean", 2.0, seedPoints(9))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	u, _ := d.Updater()
	if err := u.Checkpoint(d.CheckpointPath()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// A few post-checkpoint mutations so the log carries state the
	// degraded view must NOT pretend to have.
	if _, err := u.Insert(disc.Point{100, 100}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every WAL segment read fails with EIO — transient in kind, but
	// persistent: recovery retries, exhausts its attempts, and must park
	// in degraded mode serving the last good snapshot read-only.
	fs := faultio.NewDirFS(&faultio.Rule{Op: faultio.OpRead, PathContains: ".wal.", Err: syscall.EIO})
	cfg := fastCfg(dir)
	cfg.FS = fs
	m2 := New(cfg)
	defer m2.Close()
	serving, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if serving != 1 {
		t.Fatalf("Recover serving = %d, want 1 (degraded still serves)", serving)
	}
	d2, _ := m2.Get("deg")
	if st, _ := d2.Status(); st != StateDegraded {
		t.Fatalf("state = %s, want degraded", st)
	}
	v, err := d2.View()
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if v.Deg == nil || v.Upd != nil {
		t.Fatalf("degraded view = %+v, want snapshot-backed", v)
	}
	if v.Deg.Live != 9 {
		t.Fatalf("degraded Live = %d, want 9 (snapshot state, not the logged insert)", v.Deg.Live)
	}
	if len(v.Deg.Selection) == 0 {
		t.Fatal("degraded selection is empty")
	}
	// Mutations must refuse with a 503-shaped error while degraded.
	if _, err := d2.Updater(); err == nil {
		t.Fatal("Updater on degraded dataset succeeded")
	}

	// Disk heals: the supervisor is still retrying at the cap, so the
	// dataset must climb back to ready with the logged insert replayed.
	fs.ClearRules()
	d2.kickNow()
	waitState(t, d2, StateReady)
	if got := d2.Info().Live; got != 10 {
		t.Fatalf("Live after recovery = %d, want 10", got)
	}
}

func TestManagerScanSkipsInvalidNames(t *testing.T) {
	dir := t.TempDir()
	m := New(fastCfg(dir))
	if _, err := m.Create("good", "euclidean", 2.0, seedPoints(4)); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A stray file whose derived dataset name contains a separator must
	// be skipped by the boot scan, never joined into a path.
	if err := os.WriteFile(filepath.Join(dir, `evil\name.discsnap`), []byte("x"), 0o644); err != nil {
		t.Fatalf("plant stray file: %v", err)
	}
	m2 := New(fastCfg(dir))
	defer m2.Close()
	serving, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if serving != 1 {
		t.Fatalf("serving = %d, want 1", serving)
	}
	if _, err := m2.Get(`evil\name`); !errors.Is(err, ErrNotFound) {
		t.Fatalf("invalid name was loaded: %v", err)
	}
}

func TestValidateName(t *testing.T) {
	for _, name := range []string{"alpha", "a-b_c.1", "UPPER"} {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../etc", "a/../b", "/abs"} {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", name)
		}
	}
}
