package manager

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/snap"
	"github.com/discdiversity/disc/internal/wal"
)

// Dataset is one supervised dataset. All exported methods are safe for
// concurrent use; state transitions are owned by the supervisor
// goroutine (plus Unquarantine and close).
type Dataset struct {
	name  string
	m     *Manager
	paths dsPaths

	mu      sync.Mutex
	state   State
	reason  string
	metric  string
	radius  float64
	upd     *disc.Updater
	deg     *DegradedView
	retryAt time.Time
	settled chan struct{}

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func (m *Manager) newDataset(name string, p dsPaths) *Dataset {
	return &Dataset{
		name:    name,
		m:       m,
		paths:   p,
		settled: make(chan struct{}),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// Status reports the current state and, for non-ready states, the
// human-readable reason.
func (d *Dataset) Status() (State, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state, d.reason
}

// RetryAfter hints how long a client should wait before retrying a
// 503: the time until the supervisor's next recovery attempt, floored
// at one second.
func (d *Dataset) RetryAfter() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	wait := time.Until(d.retryAt)
	if wait < time.Second {
		wait = time.Second
	}
	return wait.Round(time.Second)
}

// Updater returns the live engine when the dataset is ready; otherwise
// an *UnavailableError naming the state. The returned updater stays
// valid even if a fault lands mid-request — a superseded instance
// refuses further mutations with its own error rather than racing.
func (d *Dataset) Updater() (*disc.Updater, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateReady && d.upd != nil {
		return d.upd, nil
	}
	return nil, d.unavailableLocked()
}

// ReadView is what a read-path handler gets: exactly one of Upd
// (ready) or Deg (degraded) is non-nil.
type ReadView struct {
	State State
	Upd   *disc.Updater
	Deg   *DegradedView
}

// View returns a read view when the dataset can serve reads (ready or
// degraded), else an *UnavailableError.
func (d *Dataset) View() (ReadView, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.state == StateReady && d.upd != nil:
		return ReadView{State: d.state, Upd: d.upd}, nil
	case d.state == StateDegraded && d.deg != nil:
		return ReadView{State: d.state, Deg: d.deg}, nil
	}
	return ReadView{}, d.unavailableLocked()
}

func (d *Dataset) unavailableLocked() *UnavailableError {
	wait := time.Until(d.retryAt)
	if wait < time.Second {
		wait = time.Second
	}
	return &UnavailableError{Dataset: d.name, State: d.state, Reason: d.reason, RetryAfter: wait.Round(time.Second)}
}

// Info is a stable snapshot of a dataset for listing/info endpoints.
// Counts are zero when the dataset cannot serve reads.
type Info struct {
	Name     string
	State    State
	Reason   string
	Metric   string
	Radius   float64
	Dim      int
	Live     int
	Selected int
	Pending  int
}

// Info captures the dataset's externally visible state.
func (d *Dataset) Info() Info {
	d.mu.Lock()
	defer d.mu.Unlock()
	info := Info{Name: d.name, State: d.state, Reason: d.reason, Metric: d.metric, Radius: d.radius}
	switch {
	case d.state == StateReady && d.upd != nil:
		info.Radius = d.upd.Radius()
		info.Dim = d.upd.Dim()
		info.Live = d.upd.Len()
		info.Selected = d.upd.Size()
		info.Pending = d.upd.Pending()
	case d.state == StateDegraded && d.deg != nil:
		info.Metric = d.deg.Metric
		info.Radius = d.deg.Radius
		info.Dim = d.deg.Dim
		info.Live = d.deg.Live
		info.Selected = len(d.deg.Selection)
	}
	return info
}

// CheckpointPath returns where this dataset's checkpoint snapshot
// lives (empty for memory-only managers).
func (d *Dataset) CheckpointPath() string {
	if !d.m.Durable() {
		return ""
	}
	return d.paths.snap
}

// ReportFault classifies an error from a mutation or checkpoint. A
// storage-class fault (the write-ahead log poisoned itself, or the
// error carries a filesystem *PathError) wakes the supervisor and
// returns true — the server should answer 503, because the client did
// nothing wrong and a retry after recovery will succeed. Anything else
// returns false: a plain bad request.
func (d *Dataset) ReportFault(err error) bool {
	if err == nil {
		return false
	}
	d.mu.Lock()
	broken := d.upd != nil && d.upd.WALBroken() != nil
	d.mu.Unlock()
	var pe *os.PathError
	if !broken && !errors.As(err, &pe) {
		return false
	}
	metFaults.Inc()
	d.m.logger().Error("dataset storage fault", "dataset", d.name, "err", err)
	d.kickNow()
	return true
}

// kickNow wakes the supervisor without blocking (the channel holds one
// pending kick; more are redundant).
func (d *Dataset) kickNow() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *Dataset) settledCh() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.settled
}

// settle marks the dataset settled (first arrival in a stable state);
// idempotent until resetSettle.
func (d *Dataset) settle() {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.settled:
	default:
		close(d.settled)
	}
}

// resetSettle re-arms the settled barrier (Unquarantine waits on the
// next settle). Caller holds d.mu.
func (d *Dataset) resetSettle() {
	select {
	case <-d.settled:
		d.settled = make(chan struct{})
	default:
	}
}

// setState publishes a state transition (and its gauge).
func (d *Dataset) setState(st State, reason string) {
	d.mu.Lock()
	d.state = st
	d.reason = reason
	d.mu.Unlock()
	setStateGauge(d.name, st)
}

// close stops the supervisor and closes the engine. Used by
// Manager.Close only.
func (d *Dataset) close() error {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = StateClosed
	var err error
	if d.upd != nil {
		err = d.upd.Close()
	}
	setStateGauge(d.name, StateClosed)
	return err
}

// supervise is the per-dataset supervisor goroutine: it drives the
// state machine until the manager closes. One dataset's supervisor
// never touches another dataset — that is the isolation property the
// chaos suite pins.
func (d *Dataset) supervise() {
	defer close(d.done)
	rng := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), uint64(len(d.name))))
	backoff := d.m.cfg.BackoffBase
	attempts := 0
	for {
		st, _ := d.Status()
		switch st {
		case StateClosed:
			return
		case StateReady:
			select {
			case <-d.stop:
				return
			case <-d.kick:
				// Only a poisoned write-ahead log needs recovery; a
				// checkpoint whose snapshot write failed leaves the log
				// healthy and the dataset fully serviceable.
				d.mu.Lock()
				broken := error(nil)
				if d.upd != nil {
					broken = d.upd.WALBroken()
				}
				if broken == nil {
					d.mu.Unlock()
					continue
				}
				// The in-memory engine may hold operations whose log append
				// failed — unacknowledged state. Recovery must reopen from
				// disk, the acknowledged prefix, never from this instance.
				d.upd.Close()
				d.upd = nil
				d.state = StateLoading
				d.reason = fmt.Sprintf("write-ahead log fault: %v", broken)
				d.resetSettle()
				d.mu.Unlock()
				setStateGauge(d.name, StateLoading)
				d.m.logger().Warn("dataset entering recovery", "dataset", d.name, "err", broken)
				attempts, backoff = 0, d.m.cfg.BackoffBase
			}
		case StateQuarantined:
			select {
			case <-d.stop:
				return
			case <-d.kick:
				// Unquarantine flipped the state to loading already; a
				// spurious kick loops back here harmlessly.
				attempts, backoff = 0, d.m.cfg.BackoffBase
			}
		default: // StateLoading, StateDegraded
			err := d.tryOpen()
			if err == nil {
				metRecoveries.Inc()
				d.m.logger().Info("dataset recovered", "dataset", d.name)
				attempts, backoff = 0, d.m.cfg.BackoffBase
				d.settle()
				continue
			}
			if isUnrecoverable(err) {
				d.quarantine(err)
				d.settle()
				continue
			}
			attempts++
			metRetries.Inc()
			d.m.logger().Warn("dataset recovery attempt failed",
				"dataset", d.name, "attempt", attempts, "err", err)
			d.mu.Lock()
			d.reason = err.Error()
			d.mu.Unlock()
			if attempts >= d.m.cfg.MaxAttempts {
				// Park: serve read-only from the last good snapshot when
				// one exists, and keep retrying at the cap either way.
				if d.tryDegrade() {
					d.m.logger().Warn("dataset serving degraded (read-only) from last snapshot",
						"dataset", d.name, "err", err)
				}
				d.settle()
			}
			// Full jitter: a fleet of datasets felled by one disk must not
			// retry in lockstep.
			wait := time.Duration(rng.Int64N(int64(backoff))) + backoff/2
			if backoff *= 2; backoff > d.m.cfg.BackoffCap {
				backoff = d.m.cfg.BackoffCap
			}
			d.mu.Lock()
			d.retryAt = time.Now().Add(wait)
			d.mu.Unlock()
			select {
			case <-d.stop:
				return
			case <-d.kick:
			case <-time.After(wait):
			}
		}
	}
}

// errUnrecoverable classifies deterministic open failures that byte
// scrubbing cannot see (a log that does not extend its snapshot, an
// unknown metric): retrying cannot help, quarantine.
var errUnrecoverable = errors.New("unrecoverable")

func isUnrecoverable(err error) bool {
	return errors.Is(err, wal.ErrCorrupt) || errors.Is(err, snap.ErrCorrupt) || errors.Is(err, errUnrecoverable)
}

// tryOpen performs one full recovery attempt: sidecar check, snapshot
// and WAL scrub, open, replay. On success the dataset is ready. The
// error classifies the failure (isUnrecoverable → quarantine, else
// retry with backoff).
func (d *Dataset) tryOpen() error {
	fsys := d.m.fs()

	// A sidecar left by a previous life keeps the dataset out until an
	// operator removes it — rebooting must not clear a quarantine.
	if data, err := fsys.ReadFile(d.paths.quar); err == nil {
		return fmt.Errorf("quarantine sidecar present: %s (%w)", bytes.TrimSpace(data), errUnrecoverable)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}

	// Scrub the snapshot: full read, every checksum checked, before any
	// state is admitted. I/O errors are retryable; validation errors are
	// corruption.
	var (
		epoch    uint64
		haveSnap bool
		ssum     *snap.VerifySummary
	)
	ssum, serr := snap.Verify(fsys, d.paths.snap)
	switch {
	case serr == nil:
		epoch, haveSnap = ssum.WALEpoch, true
	case errors.Is(serr, fs.ErrNotExist):
	default:
		return serr
	}

	// Scrub the log against the snapshot's epoch. A log from a future
	// epoch, a sequence gap, or a checksum mismatch is corruption; a
	// missing-snapshot-after-checkpoint shows up here too (the segments
	// are "from the future" relative to epoch 0).
	wres, werr := wal.Verify(fsys, d.paths.wal, epoch)
	if werr != nil {
		return werr
	}

	// Resolve the dataset's identity: the WAL header names it; a
	// snapshot-only dataset must carry a coverage graph (the graph
	// radius IS the identity); a freshly created dataset with neither
	// remembers it from Create.
	radius, metricName := wres.Radius, wres.Metric
	if metricName == "" && haveSnap {
		if ssum.GraphRadius <= 0 {
			return fmt.Errorf("checkpoint has no coverage graph; cannot determine the dataset's radius (%w)", errUnrecoverable)
		}
		radius, metricName = ssum.GraphRadius, ssum.Metric
	}
	if metricName == "" {
		d.mu.Lock()
		radius, metricName = d.radius, d.metric
		d.mu.Unlock()
	}
	if metricName == "" {
		return fmt.Errorf("no snapshot, no log, no remembered identity for %q (%w)", d.name, errUnrecoverable)
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		return fmt.Errorf("%v (%w)", err, errUnrecoverable)
	}

	u, err := disc.OpenUpdater(d.paths.snap, d.paths.wal, radius, d.m.openOpts(metric)...)
	if err != nil {
		// The scrub passed, so a deterministic (non-I/O) failure here is
		// semantic corruption: a replay id drift, a radius mismatch.
		var pe *os.PathError
		if errors.As(err, &pe) || isUnrecoverable(err) {
			return err
		}
		return fmt.Errorf("%v (%w)", err, errUnrecoverable)
	}

	d.mu.Lock()
	d.upd = u
	d.metric = metricName
	d.radius = radius
	d.deg = nil
	d.state = StateReady
	d.reason = ""
	d.mu.Unlock()
	setStateGauge(d.name, StateReady)
	return nil
}

// quarantine transitions into StateQuarantined: sidecar on disk,
// structured log line, counter. Loud by design.
func (d *Dataset) quarantine(cause error) {
	reason := cause.Error()
	d.mu.Lock()
	if d.upd != nil {
		d.upd.Close()
		d.upd = nil
	}
	d.deg = nil
	d.state = StateQuarantined
	d.reason = reason
	d.mu.Unlock()
	setStateGauge(d.name, StateQuarantined)
	metQuarantines.Inc()
	d.m.logger().Error("DATASET QUARANTINED: unrecoverable corruption; operator action required (see docs/OPERATIONS.md)",
		"dataset", d.name, "reason", reason, "sidecar", d.paths.quar)
	// Best-effort sidecar write (the disk may be the problem); an
	// existing sidecar is preserved — it names the original cause.
	if _, err := d.m.fs().Stat(d.paths.quar); err != nil {
		body, _ := json.Marshal(map[string]string{
			"dataset": d.name,
			"reason":  reason,
			"time":    time.Now().UTC().Format(time.RFC3339),
		})
		if werr := d.m.fs().WriteFile(d.paths.quar, append(body, '\n'), 0o644); werr != nil {
			d.m.logger().Error("quarantine sidecar write failed", "dataset", d.name, "err", werr)
		}
	}
}

// DegradedView is the read-only stand-in served while recovery keeps
// failing: the last good checkpoint's points and the selection a
// from-scratch component-mode Select computes over them.
type DegradedView struct {
	Radius    float64
	Metric    string
	Dim       int
	Live      int
	Selection []int
}

// tryDegrade loads the last good snapshot into a read-only view and
// enters StateDegraded. Returns false (state unchanged) when no
// readable snapshot with a coverage graph exists. An already-degraded
// dataset keeps its view.
func (d *Dataset) tryDegrade() bool {
	d.mu.Lock()
	if d.state == StateDegraded && d.deg != nil {
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()

	fsys := d.m.fs()
	ssum, err := snap.Verify(fsys, d.paths.snap)
	if err != nil || ssum.GraphRadius <= 0 || ssum.Float32 {
		return false
	}
	data, err := fsys.ReadFile(d.paths.snap)
	if err != nil {
		return false
	}
	div, err := disc.LoadDiversifier(bytes.NewReader(data))
	if err != nil {
		return false
	}
	res, err := div.Select(ssum.GraphRadius, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		return false
	}
	view := &DegradedView{
		Radius:    ssum.GraphRadius,
		Metric:    ssum.Metric,
		Dim:       ssum.Dim,
		Live:      ssum.N,
		Selection: res.SortedIDs(),
	}
	d.mu.Lock()
	d.deg = view
	d.state = StateDegraded
	d.mu.Unlock()
	setStateGauge(d.name, StateDegraded)
	metDegraded.Inc()
	return true
}
