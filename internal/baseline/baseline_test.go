package baseline

import (
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func assertValidSelection(t *testing.T, ids []int, n, k int) {
	t.Helper()
	if len(ids) != k {
		t.Fatalf("selected %d, want %d", len(ids), k)
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if id < 0 || id >= n {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestMaxMinSelection(t *testing.T) {
	pts := randomPoints(300, 2, 1)
	m := object.Euclidean{}
	for _, k := range []int{1, 2, 7, 20} {
		ids := MaxMin(pts, m, k)
		assertValidSelection(t, ids, len(pts), k)
	}
	// MaxMin must spread: its fmin should beat random sampling's.
	k := 15
	mm := FMin(pts, m, MaxMin(pts, m, k))
	rs := FMin(pts, m, RandomSample(len(pts), k, 3))
	if mm <= rs {
		t.Errorf("MaxMin fmin %g not above random %g", mm, rs)
	}
}

func TestMaxMinSeedsWithFarthestPair(t *testing.T) {
	pts := []object.Point{{0, 0}, {0.2, 0}, {1, 1}}
	ids := MaxMin(pts, object.Euclidean{}, 2)
	if !(ids[0] == 0 && ids[1] == 2) {
		t.Errorf("got %v, want [0 2]", ids)
	}
}

func TestMaxMinGreedyIsHalfApprox(t *testing.T) {
	// The greedy is a 2-approximation of the optimal fmin; verify on
	// small instances against exhaustive search.
	m := object.Euclidean{}
	for seed := uint64(0); seed < 5; seed++ {
		pts := randomPoints(12, 2, seed+5)
		k := 4
		greedy := FMin(pts, m, MaxMin(pts, m, k))
		opt := optimalFMin(pts, m, k)
		if greedy < opt/2-1e-12 {
			t.Errorf("seed %d: greedy fmin %g below half of optimal %g", seed, greedy, opt)
		}
	}
}

func optimalFMin(pts []object.Point, m object.Metric, k int) float64 {
	n := len(pts)
	best := -1.0
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k {
			if f := FMin(pts, m, chosen); f > best {
				best = f
			}
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(chosen, v))
		}
	}
	rec(0, nil)
	return best
}

func TestMaxSumSelection(t *testing.T) {
	pts := randomPoints(200, 2, 2)
	m := object.Euclidean{}
	for _, k := range []int{2, 5, 10, 11} {
		ids := MaxSum(pts, m, k)
		assertValidSelection(t, ids, len(pts), k)
	}
	// MaxSum should achieve a larger pairwise sum than random sampling.
	k := 10
	ms := FSum(pts, m, MaxSum(pts, m, k))
	rs := FSum(pts, m, RandomSample(len(pts), k, 4))
	if ms <= rs {
		t.Errorf("MaxSum fsum %g not above random %g", ms, rs)
	}
}

func TestKMedoidsSelection(t *testing.T) {
	pts := randomPoints(300, 2, 3)
	m := object.Euclidean{}
	ids := KMedoids(pts, m, 8, 1)
	if len(ids) == 0 || len(ids) > 8 {
		t.Fatalf("got %d medoids", len(ids))
	}
	// k-medoids minimises mean distance-to-nearest; it must beat MaxSum
	// (which ignores centrality) on its own objective.
	km := MedoidCost(pts, m, ids)
	msc := MedoidCost(pts, m, MaxSum(pts, m, len(ids)))
	if km >= msc {
		t.Errorf("k-medoids cost %g not below MaxSum's %g", km, msc)
	}
	// Determinism.
	again := KMedoids(pts, m, 8, 1)
	if len(again) != len(ids) {
		t.Fatal("k-medoids not deterministic in size")
	}
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatal("k-medoids not deterministic")
		}
	}
}

func TestKMedoidsClusteredData(t *testing.T) {
	// Three tight clusters; 3-medoids must pick one point per cluster.
	var pts []object.Point
	rng := rand.New(rand.NewPCG(9, 9))
	centers := []object.Point{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	for _, c := range centers {
		for i := 0; i < 30; i++ {
			pts = append(pts, object.Point{c[0] + rng.Float64()*0.02, c[1] + rng.Float64()*0.02})
		}
	}
	ids := KMedoids(pts, object.Euclidean{}, 3, 2)
	if len(ids) != 3 {
		t.Fatalf("got %d medoids", len(ids))
	}
	buckets := map[int]bool{}
	for _, id := range ids {
		buckets[id/30] = true
	}
	if len(buckets) != 3 {
		t.Errorf("medoids %v do not hit all three clusters", ids)
	}
}

func TestRandomSample(t *testing.T) {
	ids := RandomSample(100, 10, 1)
	assertValidSelection(t, ids, 100, 10)
	if got := RandomSample(5, 10, 1); len(got) != 5 {
		t.Errorf("oversampling returned %d ids", len(got))
	}
	if got := RandomSample(5, 0, 1); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestEdgeCases(t *testing.T) {
	m := object.Euclidean{}
	if got := MaxMin(nil, m, 3); got != nil {
		t.Error("empty input")
	}
	pts := randomPoints(5, 2, 8)
	if got := MaxMin(pts, m, 10); len(got) != 5 {
		t.Error("k>n should return all")
	}
	if got := MaxSum(pts, m, 10); len(got) != 5 {
		t.Error("k>n should return all")
	}
	if got := KMedoids(pts, m, 10, 1); len(got) != 5 {
		t.Error("k>n should return all")
	}
	if f := FMin(pts, m, []int{0}); f == 0 {
		t.Error("singleton fmin should be +Inf")
	}
}
