package baseline

import (
	"math"
	"math/rand/v2"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// KMedoids selects k representative objects minimising
// (1/|P|) Σ dist(p, c(p)) where c(p) is p's closest selected object — the
// clustering baseline of Figure 6(d). The implementation seeds with
// k-means++-style sampling (deterministic for a given seed) and then
// alternates assignment and per-cluster medoid recomputation until the
// cost stops improving.
func KMedoids(pts []object.Point, m object.Metric, k int, seed uint64) []int {
	n := len(pts)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		return allIDs(n)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	// k-means++ seeding: first medoid random, then proportional to
	// squared distance from the closest chosen medoid.
	medoids := []int{rng.IntN(n)}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = m.Dist(pts[i], pts[medoids[0]])
	}
	for len(medoids) < k {
		var total float64
		for _, d := range minDist {
			total += d * d
		}
		next := -1
		if total == 0 {
			for i := 0; i < n; i++ {
				if minDist[i] > 0 || !contains(medoids, i) {
					next = i
					break
				}
			}
			if next == -1 {
				break
			}
		} else {
			x := rng.Float64() * total
			for i := 0; i < n; i++ {
				x -= minDist[i] * minDist[i]
				if x <= 0 {
					next = i
					break
				}
			}
			if next == -1 {
				next = n - 1
			}
		}
		medoids = append(medoids, next)
		for i := range minDist {
			if d := m.Dist(pts[i], pts[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	cost := math.Inf(1)
	for iter := 0; iter < 50; iter++ {
		// Assignment step.
		var newCost float64
		for i := 0; i < n; i++ {
			bestC, bestD := 0, math.Inf(1)
			for c, med := range medoids {
				if d := m.Dist(pts[i], pts[med]); d < bestD {
					bestC, bestD = c, d
				}
			}
			assign[i] = bestC
			newCost += bestD
		}
		if newCost >= cost-1e-12 {
			break
		}
		cost = newCost
		// Medoid update: per cluster, the member minimising summed
		// intra-cluster distance.
		for c := range medoids {
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestSum := medoids[c], math.Inf(1)
			for _, cand := range members {
				var s float64
				for _, o := range members {
					s += m.Dist(pts[cand], pts[o])
				}
				if s < bestSum {
					best, bestSum = cand, s
				}
			}
			medoids[c] = best
		}
	}
	sort.Ints(medoids)
	return dedupe(medoids)
}

// MedoidCost returns (1/|P|) Σ_p dist(p, closest selected object).
func MedoidCost(pts []object.Point, m object.Metric, ids []int) float64 {
	if len(ids) == 0 || len(pts) == 0 {
		return math.Inf(1)
	}
	var total float64
	for _, p := range pts {
		best := math.Inf(1)
		for _, id := range ids {
			if d := m.Dist(p, pts[id]); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(pts))
}

// RandomSample returns k distinct ids drawn uniformly (deterministic per
// seed), the sampling strawman Section 4 contrasts DisC with.
func RandomSample(n, k int, seed uint64) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	ids := rng.Perm(n)[:k]
	sort.Ints(ids)
	return ids
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
