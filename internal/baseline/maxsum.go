package baseline

import "sort"

import "github.com/discdiversity/disc/internal/object"

// MaxSum greedily selects k objects aiming to maximise the sum of
// pairwise distances: following Gollapudi & Sharma's greedy, it repeatedly
// adds the unselected pair with the largest distance (and, for odd k, a
// final single object maximising its summed distance to the selection).
// This is the heuristic behind Figure 6(b), which the paper notes tends to
// focus on the outskirts of the dataset.
func MaxSum(pts []object.Point, m object.Metric, k int) []int {
	n := len(pts)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		return allIDs(n)
	}
	selected := make([]bool, n)
	var sel []int
	for len(sel)+2 <= k {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if selected[j] {
					continue
				}
				if d := m.Dist(pts[i], pts[j]); d > best {
					best, bi, bj = d, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		selected[bi], selected[bj] = true, true
		sel = append(sel, bi, bj)
	}
	if len(sel) < k {
		// Odd k: add the object with the largest summed distance to the
		// current selection.
		cand, best := -1, -1.0
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			var s float64
			for _, v := range sel {
				s += m.Dist(pts[i], pts[v])
			}
			if s > best {
				best, cand = s, i
			}
		}
		if cand >= 0 {
			sel = append(sel, cand)
		}
	}
	sort.Ints(sel)
	return sel
}
