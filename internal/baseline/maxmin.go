// Package baseline implements the diversification models the paper
// compares DisC against in Section 4 / Figure 6: greedy MaxMin
// (p-dispersion), greedy MaxSum, k-medoids clustering and random
// sampling. All baselines are deterministic given their seed and return
// object ids into the input point slice.
package baseline

import (
	"math"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// MaxMin greedily selects k objects maximising
// f_min = min_{p_i≠p_j∈S} dist(p_i,p_j): it seeds with the farthest pair
// and repeatedly adds the object whose minimum distance to the selected
// set is largest. This is the standard 2-approximation greedy the paper
// uses ("greedy heuristics which have been shown to achieve good
// solutions").
func MaxMin(pts []object.Point, m object.Metric, k int) []int {
	n := len(pts)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		return allIDs(n)
	}
	// Seed: the farthest pair (ties towards lower ids).
	bi, bj, best := 0, 0, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := m.Dist(pts[i], pts[j]); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	sel := []int{bi}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = m.Dist(pts[i], pts[bi])
	}
	add := func(v int) {
		sel = append(sel, v)
		for i := range minDist {
			if d := m.Dist(pts[i], pts[v]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	if k >= 2 {
		add(bj)
	}
	for len(sel) < k {
		cand, candDist := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > candDist {
				cand, candDist = i, minDist[i]
			}
		}
		add(cand)
	}
	sort.Ints(sel)
	return sel
}

// FMin returns min pairwise distance of the selected set (the MaxMin
// objective); +Inf for sets smaller than two.
func FMin(pts []object.Point, m object.Metric, ids []int) float64 {
	best := math.Inf(1)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if d := m.Dist(pts[ids[i]], pts[ids[j]]); d < best {
				best = d
			}
		}
	}
	return best
}

// FSum returns the sum of pairwise distances of the selected set (the
// MaxSum objective).
func FSum(pts []object.Point, m object.Metric, ids []int) float64 {
	var s float64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s += m.Dist(pts[ids[i]], pts[ids[j]])
		}
	}
	return s
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
