package disc

// Checkpoint-under-ENOSPC: a checkpoint whose snapshot write fails must
// leave the previous snapshot + write-ahead log pair authoritative and
// the updater fully serviceable — the atomic-save protocol guarantees
// the target path is untouched on any failure, and the log is only
// rotated after the snapshot has committed. A later retry (space came
// back) must succeed.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/discdiversity/disc/internal/faultio"
)

func TestCheckpointENOSPCLeavesStateAuthoritative(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "ds.discsnap")
	walPath := filepath.Join(dir, "ds.wal")
	fs := faultio.NewDirFS()

	u, err := OpenUpdater(snapPath, walPath, 0.2, WithFsync(FsyncAlways), WithStorageFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 20; i++ {
		if _, err := u.Insert(Point{float64(i) * 0.25, float64(i%4) * 0.25}); err != nil {
			t.Fatal(err)
		}
	}
	u.Flush()
	before := append([]int(nil), u.Selection()...)
	segsBefore, err := filepath.Glob(walPath + ".*")
	if err != nil || len(segsBefore) == 0 {
		t.Fatalf("no WAL segments before checkpoint: %v (%v)", segsBefore, err)
	}

	// Disk full: every write to the checkpoint's temp file fails.
	fs.AddRule(&faultio.Rule{Op: faultio.OpWrite, PathContains: ".discsnap.tmp", Err: syscall.ENOSPC})
	err = u.Checkpoint(snapPath)
	if err == nil {
		t.Fatal("checkpoint under ENOSPC succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint error = %v, want ENOSPC", err)
	}

	// The old state is untouched: no snapshot appeared, the log was not
	// rotated, and no temp debris survived the aborted save.
	if _, err := os.Stat(snapPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed checkpoint left a snapshot: %v", err)
	}
	segsAfter, _ := filepath.Glob(walPath + ".*")
	if len(segsAfter) != len(segsBefore) {
		t.Fatalf("failed checkpoint changed the segment set: %v -> %v", segsBefore, segsAfter)
	}
	if debris, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(debris) != 0 {
		t.Fatalf("aborted save left temp debris: %v", debris)
	}

	// The updater is not poisoned: reads serve, the log accepts and
	// acknowledges new mutations.
	if got := u.Selection(); len(got) != len(before) {
		t.Fatalf("selection after failed checkpoint has %d ids, want %d", len(got), len(before))
	}
	for i, id := range u.Selection() {
		if id != before[i] {
			t.Fatalf("selection changed after failed checkpoint: %v -> %v", before, u.Selection())
		}
	}
	if err := u.WALBroken(); err != nil {
		t.Fatalf("WAL poisoned by a snapshot-write failure: %v", err)
	}
	if _, err := u.Insert(Point{9, 9}); err != nil {
		t.Fatalf("insert after failed checkpoint: %v", err)
	}
	u.Flush()

	// Space comes back: the retry must compact and rotate normally.
	fs.ClearRules()
	if err := u.Checkpoint(snapPath); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("retried checkpoint wrote no snapshot: %v", err)
	}

	// The compacted pair round-trips: a fresh open replays to the same
	// live count (21 = 20 seeds + the post-failure insert).
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	u2, err := OpenUpdater(snapPath, walPath, 0.2, WithFsync(FsyncAlways), WithStorageFS(fs))
	if err != nil {
		t.Fatalf("reopen after retried checkpoint: %v", err)
	}
	defer u2.Close()
	if u2.Len() != 21 {
		t.Fatalf("reopened Len = %d, want 21", u2.Len())
	}
}
