package disc

import "github.com/discdiversity/disc/internal/baseline"

// The baseline diversification models the paper compares DisC against
// (Section 4). They select a fixed number k of objects — unlike DisC,
// whose size follows from the radius — and come with their objective
// evaluators so the models can be compared quantitatively.

// MaxMin greedily selects k objects maximising the minimum pairwise
// distance (p-dispersion).
func MaxMin(pts []Point, m Metric, k int) []int { return baseline.MaxMin(pts, m, k) }

// MaxSum greedily selects k objects maximising the sum of pairwise
// distances.
func MaxSum(pts []Point, m Metric, k int) []int { return baseline.MaxSum(pts, m, k) }

// KMedoids selects k medoids minimising the mean distance of each object
// to its closest medoid (deterministic per seed).
func KMedoids(pts []Point, m Metric, k int, seed uint64) []int {
	return baseline.KMedoids(pts, m, k, seed)
}

// RandomSample selects k distinct objects uniformly at random
// (deterministic per seed).
func RandomSample(n, k int, seed uint64) []int { return baseline.RandomSample(n, k, seed) }

// FMin evaluates the MaxMin objective of a selection: its minimum
// pairwise distance.
func FMin(pts []Point, m Metric, ids []int) float64 { return baseline.FMin(pts, m, ids) }

// FSum evaluates the MaxSum objective of a selection: its summed pairwise
// distance.
func FSum(pts []Point, m Metric, ids []int) float64 { return baseline.FSum(pts, m, ids) }

// MedoidCost evaluates the k-medoids objective of a selection: the mean
// distance from every object to its closest selected object.
func MedoidCost(pts []Point, m Metric, ids []int) float64 {
	return baseline.MedoidCost(pts, m, ids)
}
