package disc

// The durability property suite (`make crash-props`): for randomized
// insert/delete sequences and a crash at EVERY byte boundary of the
// write-ahead log, recovery must yield a selection bit-identical to a
// from-scratch component-mode Select over the surviving op prefix —
// plus the checkpoint-protocol crash states and the fault-injected
// (short write / failed sync / mid-rotation) paths.
//
// This file is an internal test (package disc) so it can reach the
// unexported withWALOpenFile hook that splices internal/faultio into
// the log's file factory.

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/discdiversity/disc/internal/faultio"
	"github.com/discdiversity/disc/internal/wal"
)

// asWALOpen adapts a faultio file factory to the wal.File-returning
// signature withWALOpenFile expects (the interfaces are textually
// identical; only the names differ).
func asWALOpen(open func(name string, create bool) (faultio.File, error)) func(string, bool) (wal.File, error) {
	return func(name string, create bool) (wal.File, error) {
		f, err := open(name, create)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// walOp is one logical operation of a golden run, in log-id space.
type walOp struct {
	del bool
	id  int64
	pt  []float64
}

// genOps derives a deterministic mixed workload: ~70% inserts
// clustered enough (radius 0.15 over [0,1]²) that components merge and
// split, ~30% deletes of random live ids.
func genOps(rng *rand.Rand, n int) []walOp {
	var ops []walOp
	var live []int64
	next := int64(0)
	for len(ops) < n {
		if len(live) > 0 && rng.Float64() < 0.3 {
			k := rng.IntN(len(live))
			ops = append(ops, walOp{del: true, id: live[k]})
			live = append(live[:k], live[k+1:]...)
			continue
		}
		ops = append(ops, walOp{id: next, pt: []float64{rng.Float64(), rng.Float64()}})
		live = append(live, next)
		next++
	}
	return ops
}

// applyOps simulates a prefix of ops in log-id space, returning the
// live (id, point) pairs in ascending id order.
func applyOps(ops []walOp) (ids []int64, pts [][]float64) {
	live := map[int64][]float64{}
	for _, op := range ops {
		if op.del {
			delete(live, op.id)
		} else {
			live[op.id] = op.pt
		}
	}
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pts = append(pts, live[id])
	}
	return ids, pts
}

// assertRecovered checks that u's live state is exactly (ids, pts) and
// that its published selection is bit-identical to a from-scratch
// component-mode Select over those points.
func assertRecovered(t *testing.T, u *Updater, ids []int64, pts [][]float64, r float64, ctx string) {
	t.Helper()
	if u.Len() != len(ids) {
		t.Fatalf("%s: recovered %d live points, want %d", ctx, u.Len(), len(ids))
	}
	// Recovered in-memory ids equal log ids: replay appends in log
	// order and OpenUpdater verifies each assigned id against the
	// recorded one, so surviving log id ids[k] must be alive and hold
	// pts[k].
	for k, pt := range pts {
		id := int(ids[k])
		if !u.Alive(id) {
			t.Fatalf("%s: recovered id %d is not alive", ctx, id)
		}
		got := u.Point(id)
		for j := range pt {
			if got[j] != pt[j] {
				t.Fatalf("%s: recovered point %d = %v, want %v", ctx, id, got, pt)
			}
		}
	}
	if len(ids) == 0 {
		if u.Size() != 0 {
			t.Fatalf("%s: empty state selects %d", ctx, u.Size())
		}
		return
	}
	points := make([]Point, len(pts))
	for i, p := range pts {
		points[i] = Point(p)
	}
	d, err := New(points, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	res, err := d.Select(r, WithSelectMode(SelectComponents))
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	// The rebuild indexes the surviving points densely; translate its
	// selection back into log-id space before comparing.
	want := make([]int, 0, len(res.IDs()))
	for _, j := range res.IDs() {
		want = append(want, int(ids[j]))
	}
	sort.Ints(want)
	got := u.Selection()
	if len(got) != len(want) {
		t.Fatalf("%s: recovered selection %v, rebuild %v", ctx, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: recovered selection %v, rebuild %v", ctx, got, want)
		}
	}
	if err := u.Verify(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

// goldenRun executes ops against a fresh durable updater in dir and
// returns the cumulative WAL byte boundary after each op (boundary[i]
// = total log bytes once ops[:i+1] are acknowledged), plus the final
// total and the segment file names in sequence order.
func goldenRun(t *testing.T, dir string, ops []walOp, r float64, opts ...Option) (boundaries []int64, segs []string) {
	t.Helper()
	open, attempted := faultio.OpenCrash(1 << 40)
	all := append([]Option{withWALOpenFile(asWALOpen(open))}, opts...)
	u, err := OpenUpdater(filepath.Join(dir, "d.discsnap"), filepath.Join(dir, "d.wal"), r, all...)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.del {
			err = u.Delete(int(op.id))
		} else {
			_, err = u.Insert(Point(op.pt))
		}
		if err != nil {
			t.Fatalf("golden op: %v", err)
		}
		boundaries = append(boundaries, *attempted)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "d.wal.") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return boundaries, segs
}

// crashImage materialises the disk state of a crash at byte `limit` of
// the golden run's concatenated segment stream: each segment receives
// its slice of the first `limit` bytes, in order; segments entirely
// past the limit do not exist.
func crashImage(t *testing.T, goldenDir, dir string, segs []string, limit int64) {
	t.Helper()
	off := int64(0)
	for _, name := range segs {
		data, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		take := limit - off
		if take <= 0 {
			break
		}
		if take > int64(len(data)) {
			take = int64(len(data))
		}
		if err := os.WriteFile(filepath.Join(dir, name), data[:take], 0o644); err != nil {
			t.Fatal(err)
		}
		off += int64(len(data))
	}
}

// TestCrashPrefixRecoveryEveryByte is the headline durability property:
// truncate the log at every byte boundary; recovery must succeed and
// produce exactly the surviving op prefix, with a selection
// bit-identical to the from-scratch component-mode Select over it.
// Small segments force the stream across several rotations, so cuts
// land in headers, mid-record, and between segments.
func TestCrashPrefixRecoveryEveryByte(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const r = 0.15
	ops := genOps(rng, 26)
	goldenDir := t.TempDir()
	boundaries, segs := goldenRun(t, goldenDir, ops, r,
		WithFsync(FsyncNone), WithWALSegmentBytes(256))
	if len(segs) < 3 {
		t.Fatalf("workload stayed in %d segments; want several to exercise rotation", len(segs))
	}
	total := boundaries[len(boundaries)-1]

	step := int64(1)
	if testing.Short() {
		step = 13
	}
	for cut := int64(0); cut <= total; cut += step {
		dir := t.TempDir()
		crashImage(t, goldenDir, dir, segs, cut)
		surviving := 0
		for surviving < len(ops) && boundaries[surviving] <= cut {
			surviving++
		}
		u, err := OpenUpdater(filepath.Join(dir, "d.discsnap"), filepath.Join(dir, "d.wal"), r)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		ids, pts := applyOps(ops[:surviving])
		assertRecovered(t, u, ids, pts, r, fmt.Sprintf("cut=%d (%d ops survive)", cut, surviving))
		if err := u.Close(); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
}

// TestCrashRecoveryInjectedWriter drives the same property through the
// faultio factory end to end: the byte budget swallows everything past
// the crash point while the writer keeps acknowledging, exactly like a
// kernel losing un-synced pages — including budget exhaustion during a
// segment rotation.
func TestCrashRecoveryInjectedWriter(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 5))
	const r = 0.15
	ops := genOps(rng, 22)
	goldenDir := t.TempDir()
	boundaries, _ := goldenRun(t, goldenDir, ops, r,
		WithFsync(FsyncNone), WithWALSegmentBytes(256))
	total := boundaries[len(boundaries)-1]

	step := int64(17)
	if testing.Short() {
		step = 61
	}
	for cut := int64(0); cut <= total; cut += step {
		dir := t.TempDir()
		open, _ := faultio.OpenCrash(cut)
		u, err := OpenUpdater(filepath.Join(dir, "d.discsnap"), filepath.Join(dir, "d.wal"), r,
			withWALOpenFile(asWALOpen(open)), WithFsync(FsyncNone), WithWALSegmentBytes(256))
		if err != nil {
			// The budget died before even the first segment header: no
			// state was ever acknowledged, nothing to check.
			if cut == 0 {
				continue
			}
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		acked := 0
		for _, op := range ops {
			if op.del {
				err = u.Delete(int(op.id))
			} else {
				_, err = u.Insert(Point(op.pt))
			}
			if err != nil {
				break // poisoned mid-rotation: nothing later is acknowledged
			}
			acked++
		}
		u.Close()

		// Survivors are the ops whose bytes fit the budget — never more
		// than were acknowledged.
		surviving := 0
		for surviving < len(ops) && boundaries[surviving] <= cut {
			surviving++
		}
		if surviving > acked {
			t.Fatalf("cut=%d: %d ops survive but only %d were acknowledged", cut, surviving, acked)
		}
		u2, err := OpenUpdater(filepath.Join(dir, "d.discsnap"), filepath.Join(dir, "d.wal"), r)
		if err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		ids, pts := applyOps(ops[:surviving])
		assertRecovered(t, u2, ids, pts, r, fmt.Sprintf("injected cut=%d", cut))
		if err := u2.Close(); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
}

// TestCheckpointCrashStates walks the crash windows of the checkpoint
// protocol itself: (A) snapshot renamed but log not yet rotated, (B)
// every byte prefix of the post-checkpoint log over the new snapshot,
// (C) the impossible-unless-tampered states — post-rotation log with a
// pre-rotation snapshot, and a checkpointed log with no snapshot at
// all — which must be refused, not guessed at.
func TestCheckpointCrashStates(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	const r = 0.15
	pre := genOps(rng, 14)
	goldenDir := t.TempDir()
	snapPath := filepath.Join(goldenDir, "d.discsnap")
	walPath := filepath.Join(goldenDir, "d.wal")

	u, err := OpenUpdater(snapPath, walPath, r, WithFsync(FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pre {
		if op.del {
			err = u.Delete(int(op.id))
		} else {
			_, err = u.Insert(Point(op.pt))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Keep the pre-checkpoint artifacts for state A.
	preSeg := walPath + ".00000000-00000001"
	preSegData, err := os.ReadFile(preSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	preIDs, prePts := applyOps(pre)

	// Drive post-checkpoint ops against the live updater, recording
	// each one in LOG-id space via the internal epochID mapping (the
	// in-memory ids the updater hands out stay sparse across a
	// checkpoint; the log speaks the compacted dense ids).
	var post []walOp
	var postBoundaries []int64
	postSeg := walPath + ".00000001-00000001"
	for i := 0; i < 8; i++ {
		if i%3 == 2 {
			memID := -1
			for id := range u.epochID {
				if u.Alive(id) {
					memID = id
					if (id+i)%2 == 0 {
						break
					}
				}
			}
			if memID < 0 {
				t.Fatal("no live point left to delete")
			}
			logID := u.epochID[memID]
			if err := u.Delete(memID); err != nil {
				t.Fatal(err)
			}
			post = append(post, walOp{del: true, id: logID})
		} else {
			pt := []float64{rng.Float64(), rng.Float64()}
			memID, err := u.Insert(Point(pt))
			if err != nil {
				t.Fatal(err)
			}
			post = append(post, walOp{id: u.epochID[memID], pt: pt})
		}
		st, err := os.Stat(postSeg)
		if err != nil {
			t.Fatal(err)
		}
		postBoundaries = append(postBoundaries, st.Size())
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	snapData, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	postSegData, err := os.ReadFile(postSeg)
	if err != nil {
		t.Fatal(err)
	}

	// The surviving-prefix state after the checkpoint: log ids are the
	// dense re-identification of the pre-checkpoint survivors.
	renumbered := make([]walOp, 0, len(preIDs)+len(post))
	for k, pt := range prePts {
		renumbered = append(renumbered, walOp{id: int64(k), pt: pt})
	}

	// State A: crash between snapshot rename and log rotation — the new
	// snapshot sits next to the old epoch's segment. Recovery must load
	// the snapshot, discard the stale segment, and match the checkpoint
	// state exactly.
	dirA := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirA, "d.discsnap"), snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirA, "d.wal.00000000-00000001"), preSegData, 0o644); err != nil {
		t.Fatal(err)
	}
	uA, err := OpenUpdater(filepath.Join(dirA, "d.discsnap"), filepath.Join(dirA, "d.wal"), r)
	if err != nil {
		t.Fatalf("state A: %v", err)
	}
	idsA, ptsA := applyOps(renumbered)
	assertRecovered(t, uA, idsA, ptsA, r, "state A (pre-rotation crash)")
	uA.Close()
	if _, err := os.Stat(filepath.Join(dirA, "d.wal.00000000-00000001")); !os.IsNotExist(err) {
		t.Fatalf("state A: stale epoch-0 segment survived recovery: %v", err)
	}

	// State B: crash at every byte of the post-checkpoint segment.
	for cut := int64(0); cut <= int64(len(postSegData)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "d.discsnap"), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		if cut > 0 {
			if err := os.WriteFile(filepath.Join(dir, "d.wal.00000001-00000001"), postSegData[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		surviving := 0
		for surviving < len(post) && postBoundaries[surviving] <= cut {
			surviving++
		}
		uB, err := OpenUpdater(filepath.Join(dir, "d.discsnap"), filepath.Join(dir, "d.wal"), r)
		if err != nil {
			t.Fatalf("state B cut=%d: %v", cut, err)
		}
		ids, pts := applyOps(append(append([]walOp(nil), renumbered...), post[:surviving]...))
		assertRecovered(t, uB, ids, pts, r, fmt.Sprintf("state B cut=%d", cut))
		uB.Close()
	}

	// State C1: the log rotated but the snapshot is the PRE-checkpoint
	// one (epoch 0, here: absent entirely) — acknowledged state would be
	// lost, so recovery must refuse.
	dirC := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirC, "d.wal.00000001-00000001"), postSegData, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenUpdater(filepath.Join(dirC, "d.discsnap"), filepath.Join(dirC, "d.wal"), r); err == nil {
		t.Fatal("state C1: recovery from a checkpointed log with no snapshot succeeded")
	}

	// State C2: segments from an epoch AHEAD of the snapshot.
	dirC2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirC2, "d.discsnap"), snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirC2, "d.wal.00000002-00000001"), postSegData, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenUpdater(filepath.Join(dirC2, "d.discsnap"), filepath.Join(dirC2, "d.wal"), r); err == nil {
		t.Fatal("state C2: recovery with a future-epoch segment succeeded")
	}
}

// TestWALPoisoningOnSyncFailure: a failed fsync poisons the log — the
// mutation reports an error and every later mutation fails too, so an
// op whose durability is unknown never gains a successor. Recovery
// yields a prefix of the attempted ops that includes at least every
// acknowledged one; the un-acked frame itself MAY survive (its bytes
// reached the file, only the fsync failed), which is exactly the
// contract — acked ops always recover, un-acked ops recover or not.
func TestWALPoisoningOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "d.discsnap")
	walPath := filepath.Join(dir, "d.wal")
	var ff *faultio.FaultFile
	open := func(name string, create bool) (wal.File, error) {
		flags := os.O_WRONLY | os.O_APPEND
		if create {
			flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		}
		f, err := os.OpenFile(name, flags, 0o644)
		if err != nil {
			return nil, err
		}
		ff = faultio.NewFaultFile(f)
		// Sync 1 is the segment-creation sync; 2 and 3 ack the first
		// two inserts; 4 fails.
		ff.FailSyncAt = 4
		return ff, nil
	}
	u, err := OpenUpdater(snapPath, walPath, 0.15, withWALOpenFile(open), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(Point{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(Point{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(Point{0.5, 0.5}); err == nil {
		t.Fatal("insert with failing fsync was acknowledged")
	}
	if _, err := u.Insert(Point{0.7, 0.7}); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("mutation after a failed fsync = %v, want poisoned-log error", err)
	}
	if err := u.Delete(0); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("delete after a failed fsync = %v, want poisoned-log error", err)
	}
	u.Close()

	u2, err := OpenUpdater(snapPath, walPath, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	// Here no crash actually happened, so the un-acked third insert's
	// bytes are all present and recovery includes it.
	ids, pts := applyOps([]walOp{
		{id: 0, pt: []float64{0.1, 0.1}},
		{id: 1, pt: []float64{0.9, 0.9}},
		{id: 2, pt: []float64{0.5, 0.5}},
	})
	assertRecovered(t, u2, ids, pts, 0.15, "after poisoned run")
}

// TestWALShortWriteTornTail: a short write leaves a torn frame; the op
// is not acknowledged, and recovery truncates the tail back to the
// acknowledged prefix.
func TestWALShortWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "d.discsnap")
	walPath := filepath.Join(dir, "d.wal")
	open := func(name string, create bool) (wal.File, error) {
		flags := os.O_WRONLY | os.O_APPEND
		if create {
			flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		}
		f, err := os.OpenFile(name, flags, 0o644)
		if err != nil {
			return nil, err
		}
		ff := faultio.NewFaultFile(f)
		// Write 1 is the header; write 3 (the second op) tears.
		ff.ShortWriteAt = 3
		return ff, nil
	}
	u, err := OpenUpdater(snapPath, walPath, 0.15, withWALOpenFile(open), WithFsync(FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(Point{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(Point{0.9, 0.9}); err == nil {
		t.Fatal("short-written insert was acknowledged")
	}
	u.Close()

	u2, err := OpenUpdater(snapPath, walPath, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	ids, pts := applyOps([]walOp{{id: 0, pt: []float64{0.1, 0.1}}})
	assertRecovered(t, u2, ids, pts, 0.15, "after short write")
}
