package disc

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
)

// ZoomOutVariant selects the strategy Zoom-Out uses to decide which of
// the current representatives survive at the larger radius.
type ZoomOutVariant int

const (
	// ZoomOutGreedyLargest discards many old representatives per kept
	// one (paper variation (a); the recommended default).
	ZoomOutGreedyLargest ZoomOutVariant = iota
	// ZoomOutGreedySmallest maximises the overlap with the previous
	// result (variation (b)).
	ZoomOutGreedySmallest
	// ZoomOutGreedyCoverage keeps the representatives covering the most
	// yet-uncovered objects (variation (c); highest quality, highest
	// cost).
	ZoomOutGreedyCoverage
	// ZoomOutArbitrary processes old representatives in index order:
	// cheapest, slightly larger results.
	ZoomOutArbitrary
)

func (v ZoomOutVariant) toCore() (core.ZoomOutVariant, error) {
	switch v {
	case ZoomOutGreedyLargest:
		return core.ZoomOutGreedyA, nil
	case ZoomOutGreedySmallest:
		return core.ZoomOutGreedyB, nil
	case ZoomOutGreedyCoverage:
		return core.ZoomOutGreedyC, nil
	case ZoomOutArbitrary:
		return core.ZoomOutPlain, nil
	default:
		return 0, fmt.Errorf("disc: unknown zoom-out variant %d", int(v))
	}
}

// ZoomIn adapts res to a smaller radius r < res.Radius(). All current
// representatives are kept (the new selection is a superset) and newly
// uncovered objects are covered greedily, so the refined result stays
// close to what was already shown.
func (d *Diversifier) ZoomIn(res *Result, r float64) (*Result, error) {
	if err := d.own(res); err != nil {
		return nil, err
	}
	e, err := d.engineForRadius(r, false)
	if err != nil {
		return nil, err
	}
	sol, err := core.ZoomIn(e, res.sol.Clone(), r, true, true)
	if err != nil {
		return nil, err
	}
	return &Result{div: d, sol: sol}, nil
}

// ZoomOut adapts res to a larger radius r > res.Radius(), preferring to
// keep current representatives where the dissimilarity condition allows.
func (d *Diversifier) ZoomOut(res *Result, r float64, variant ZoomOutVariant) (*Result, error) {
	if err := d.own(res); err != nil {
		return nil, err
	}
	cv, err := variant.toCore()
	if err != nil {
		return nil, err
	}
	e, err := d.engineForRadius(r, false)
	if err != nil {
		return nil, err
	}
	prev := res.sol.Clone()
	if !prev.DistBlackExact {
		core.RecomputeDistBlack(e, prev)
	}
	sol, err := core.ZoomOut(e, prev, r, cv)
	if err != nil {
		return nil, err
	}
	return &Result{div: d, sol: sol}, nil
}

// LocalZoom describes the outcome of a local zoom operation; see
// Diversifier.LocalZoomIn and Diversifier.LocalZoomOut.
type LocalZoom struct {
	// Center is the representative that was zoomed into.
	Center int
	// LocalRadius is the radius now in effect around Center.
	LocalRadius float64
	// Region lists the objects that took part in the local operation.
	Region []int
	// Added lists newly introduced representatives.
	Added []int
	// Removed lists representatives dropped by a local zoom-out.
	Removed []int
	// Representatives is the full updated selection.
	Representatives []int
}

// LocalZoomIn re-diversifies only the neighbourhood of one selected
// representative at a smaller radius r, leaving the rest of the result
// untouched (the paper's local zooming, Figures 1(d) and 2).
func (d *Diversifier) LocalZoomIn(res *Result, center int, r float64) (*LocalZoom, error) {
	if err := d.own(res); err != nil {
		return nil, err
	}
	e, err := d.engineForRadius(r, false)
	if err != nil {
		return nil, err
	}
	lr, err := core.LocalZoomIn(e, res.sol.Clone(), center, r, true)
	if err != nil {
		return nil, err
	}
	return localZoomFrom(lr), nil
}

// LocalZoomOut coarsens the result around one representative: other
// representatives within r of it are removed and any coverage lost at the
// region boundary is repaired at the original radius.
func (d *Diversifier) LocalZoomOut(res *Result, center int, r float64) (*LocalZoom, error) {
	if err := d.own(res); err != nil {
		return nil, err
	}
	e, err := d.engineForRadius(r, false)
	if err != nil {
		return nil, err
	}
	lr, err := core.LocalZoomOut(e, res.sol.Clone(), center, r)
	if err != nil {
		return nil, err
	}
	return localZoomFrom(lr), nil
}

func localZoomFrom(lr *core.LocalResult) *LocalZoom {
	return &LocalZoom{
		Center:          lr.Center,
		LocalRadius:     lr.LocalRadius,
		Region:          lr.Region,
		Added:           lr.Added,
		Removed:         lr.Removed,
		Representatives: lr.Final,
	}
}

func (d *Diversifier) own(res *Result) error {
	if res == nil || res.div != d {
		return fmt.Errorf("disc: result does not belong to this diversifier")
	}
	if res.coverageOnly {
		return fmt.Errorf("disc: zooming requires a DisC result, not a coverage-only one")
	}
	if res.multiRadii != nil {
		return fmt.Errorf("disc: multi-radius results cannot be zoomed; recompute with scaled radii")
	}
	return nil
}
