# Shared entry points for CI (.github/workflows/ci.yml) and humans.
GO ?= go

.PHONY: build test lint bench bench-guard

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector
test:
	$(GO) test -race ./...

## lint: go vet plus the gofmt gate CI enforces
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

## bench: one-iteration smoke pass over every benchmark
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -timeout 25m ./...

## bench-guard: vet + compile-and-run gate over the selection and
## steady-state neighbour-query benchmarks with allocation reporting.
## Fails on any build or vet regression in the bench files; the output
## (bench-guard.txt) is uploaded as a CI artifact so the repo's perf
## trajectory is inspectable per commit. Also runs the zero-allocation
## regression tests, which carry a !race build tag and are therefore
## invisible to `make test`.
bench-guard:
	$(GO) vet ./...
	$(GO) test ./internal/core -run ZeroAlloc -v -count=1
	@$(GO) test -run '^$$' -bench='Select|Neighbors|GreedyDisC' -benchtime=1x -benchmem -timeout 20m ./... > bench-guard.txt 2>&1; \
	status=$$?; cat bench-guard.txt; exit $$status
