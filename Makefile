# Shared entry points for CI (.github/workflows/ci.yml) and humans.
GO ?= go

# bench-guard workload: must match the checked-in BENCH_PR5.json and
# BENCH_PR4.json baselines (cmd/benchguard refuses to compare differing
# workloads).
BENCH_N ?= 50000
BENCH_R ?= 0.0025
# Allowed relative regression before bench-guard fails (0.25 = +25%).
# The baselines were measured on this repo's single-core dev container;
# wall-clock comparisons only hold on comparable hardware, so raise the
# tolerance (or re-measure the baselines) when running on slower or
# noisier runners.
BENCH_TOLERANCE ?= 0.25

# bench-serve workload: must match the checked-in BENCH_SERVE.json
# identity (n/dim/radius/seed/workers/duration/mix are all part of it —
# benchguard refuses to compare differing serve workloads).
SERVE_N ?= 2000
SERVE_WORKERS ?= 4
SERVE_DURATION ?= 10s

.PHONY: build test lint bench bench-guard bench-serve snapshot-bench doclint kernel-props crash-props chaos-props

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector
test:
	$(GO) test -race ./...

## lint: go vet plus the gofmt gate CI enforces
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

## bench: one-iteration smoke pass over every benchmark, then
## regenerate the checked-in BENCH_PR5.json perf baseline, the
## BENCH_PR6.json incremental-update baseline and the BENCH_PR7.json
## high-dimensional kernel baseline from the canonical 50k workloads
## (commit the refreshed files when the change is a deliberate perf
## shift measured on the baseline hardware).
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -timeout 25m ./...
	$(GO) run ./cmd/discbench -exp perf -n $(BENCH_N) -r $(BENCH_R) -format=json > BENCH_PR5.json
	@cat BENCH_PR5.json
	$(GO) run ./cmd/discbench -exp stream -n $(BENCH_N) -r $(BENCH_R) -format=json > BENCH_PR6.json
	@cat BENCH_PR6.json
	$(GO) run ./cmd/discbench -exp highdim -n $(BENCH_N) -format=json > BENCH_PR7.json
	@cat BENCH_PR7.json
	$(MAKE) bench-serve

## bench-serve: regenerate the checked-in BENCH_SERVE.json measured-SLO
## baseline: build discserve and discload, spawn the server on a free
## port (with a throwaway WAL dir so the durable path is exercised),
## drive the default read/write mix for SERVE_DURATION from
## SERVE_WORKERS concurrent clients, and record per-endpoint
## throughput + p50/p99 plus the server-side /metrics counter deltas.
## The post-run /metrics scrape lands in serve-metrics.prom (a CI
## artifact). Commit the refreshed BENCH_SERVE.json only when measured
## on the baseline hardware.
bench-serve:
	$(GO) build -o bin/discserve ./cmd/discserve
	$(GO) build -o bin/discload ./cmd/discload
	./bin/discload -spawn ./bin/discserve -n $(SERVE_N) -workers $(SERVE_WORKERS) \
		-duration $(SERVE_DURATION) -out BENCH_SERVE.json -metrics-out serve-metrics.prom
	@cat BENCH_SERVE.json

## bench-guard: vet + compile-and-run gate over the selection and
## steady-state neighbour-query benchmarks with allocation reporting,
## plus the regression gates: the canonical 50k workload is re-measured
## for the perf experiment (bench-current.json, diffed against the
## checked-in BENCH_PR5.json — Build/Select/component-Select metrics),
## the snapshot experiment (snapshot-bench.json, diffed against
## BENCH_PR4.json — save/load metrics) and the stream experiment
## (stream-bench.json, diffed against BENCH_PR6.json — updates/sec
## floor and repair-latency p99 ceiling) and the highdim experiment
## (highdim-bench.json, diffed against BENCH_PR7.json — per-metric
## batched-join speedup, gated by an absolute 2x floor that transfers
## across hardware because it is a same-machine ratio) and the serve
## load run (serve-current.json from cmd/discload against a spawned
## discserve, diffed against BENCH_SERVE.json — per-endpoint
## throughput floor and p99 ceiling), failing on
## anything more than BENCH_TOLERANCE (default +25%) over its baseline.
## All outputs are uploaded as CI artifacts so the repo's perf
## trajectory is inspectable per commit. Also runs the zero-allocation
## regression tests, which carry a !race build tag and are therefore
## invisible to `make test`.
bench-guard:
	$(GO) vet ./...
	$(GO) test ./internal/core -run ZeroAlloc -v -count=1
	@$(GO) test -run '^$$' -bench='Select|Neighbors|GreedyDisC' -benchtime=1x -benchmem -timeout 20m ./... > bench-guard.txt 2>&1; \
	status=$$?; cat bench-guard.txt; exit $$status
	$(GO) run ./cmd/discbench -exp perf -n $(BENCH_N) -r $(BENCH_R) -format=json > bench-current.json
	$(GO) run ./cmd/discbench -exp snapshot -n $(BENCH_N) -r $(BENCH_R) -format=json > snapshot-bench.json
	$(GO) run ./cmd/discbench -exp stream -n $(BENCH_N) -r $(BENCH_R) -format=json > stream-bench.json
	$(GO) run ./cmd/discbench -exp highdim -n $(BENCH_N) -format=json > highdim-bench.json
	$(GO) build -o bin/discserve ./cmd/discserve
	$(GO) build -o bin/discload ./cmd/discload
	./bin/discload -spawn ./bin/discserve -n $(SERVE_N) -workers $(SERVE_WORKERS) \
		-duration $(SERVE_DURATION) -out serve-current.json -metrics-out serve-metrics.prom
	$(GO) run ./cmd/benchguard -baseline BENCH_PR5.json -current bench-current.json \
		-snapshot-baseline BENCH_PR4.json -snapshot-current snapshot-bench.json \
		-stream-baseline BENCH_PR6.json -stream-current stream-bench.json \
		-highdim-baseline BENCH_PR7.json -highdim-current highdim-bench.json \
		-serve-baseline BENCH_SERVE.json -serve-current serve-current.json \
		-tolerance $(BENCH_TOLERANCE)

## snapshot-bench: measure cold-build vs snapshot-save vs warm-load on
## the canonical 50k workload (the BENCH_PR4.json trajectory metric).
## CI uploads the output alongside the bench-guard artifacts; refresh
## the checked-in baseline with
## `make snapshot-bench && cp snapshot-bench.json BENCH_PR4.json`.
snapshot-bench:
	$(GO) run ./cmd/discbench -exp snapshot -n $(BENCH_N) -r $(BENCH_R) -format=json > snapshot-bench.json
	@cat snapshot-bench.json

## kernel-props: the kernel/filter property suites (bit-identity of the
## batched and pre-filtered scans against the per-pair reference) under
## both ends of the amd64 microarchitecture spectrum: GOAMD64=v1 (plain
## SSE2 codegen) and GOAMD64=v3 (AVX/FMA-era codegen). The widened
## thresholds must hold whatever instruction selection the compiler
## picks; on non-amd64 hosts the variable is ignored and the suites
## simply run twice.
kernel-props:
	GOAMD64=v1 $(GO) test ./internal/object -run 'RawBatch|Filter|Within|Float32|Float64' -count=1
	GOAMD64=v3 $(GO) test ./internal/object -run 'RawBatch|Filter|Within|Float32|Float64' -count=1

## crash-props: the durability property suites under the race detector
## — the WAL's torn-tail/bit-flip/rotation invariants, the fault
## injectors' own contracts, the every-byte crash-prefix recovery
## property (recovered selection bit-identical to a from-scratch
## component Select over the surviving op prefix), the checkpoint
## crash-window states, and the server's crash-restart and
## load-shedding behaviour.
crash-props:
	$(GO) test -race -count=1 ./internal/wal ./internal/faultio
	$(GO) test -race -count=1 -run 'TestCrashPrefixRecoveryEveryByte|TestCrashRecoveryInjectedWriter|TestCheckpointCrashStates|TestWALPoisoningOnSyncFailure|TestWALShortWriteTornTail' .
	$(GO) test -race -count=1 -run 'TestLiveCrashRestart|TestDurableCreateRefusesLeftoverState|TestAdmissionControl|TestRequestTimeout|TestPanicRecovery|TestLiveFsyncModesOverHTTP' ./internal/server

## chaos-props: the fault-isolation property suites under the race
## detector — randomized multi-dataset fault sweeps against a server
## holding three concurrently-served datasets (WAL append EIO, sync
## failure, torn writes, checkpoint ENOSPC, boot-time read faults,
## interior corruption). The property: datasets that were not faulted
## keep serving with zero errors throughout, while the faulted one
## either recovers a selection bit-identical to its acknowledged op
## prefix or quarantines loudly. Also runs the manager's own lifecycle
## suites (degraded mode, quarantine round-trip, backoff parking) and
## the root checkpoint-ENOSPC authority test.
chaos-props:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/server
	$(GO) test -race -count=1 ./internal/manager
	$(GO) test -race -count=1 -run 'TestCheckpointENOSPCLeavesStateAuthoritative' .

## doclint: verify that relative links and file references in the
## repo's markdown docs resolve (the CI doc-link gate; see
## doclint_test.go).
doclint:
	$(GO) test . -run TestDocLinks -count=1 -v
