# Shared entry points for CI (.github/workflows/ci.yml) and humans.
GO ?= go

.PHONY: build test lint bench

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector
test:
	$(GO) test -race ./...

## lint: go vet plus the gofmt gate CI enforces
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

## bench: one-iteration smoke pass over every benchmark
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -timeout 25m ./...
