package disc_test

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	disc "github.com/discdiversity/disc"
)

// rebuildSelection runs the from-scratch component-mode Select over the
// updater's live points and returns the selected ids mapped back to the
// updater's id space (the remap old→dense is monotone, so the inverse
// is just the ascending list of live ids).
func rebuildSelection(t *testing.T, u *disc.Updater, m disc.Metric, slots int, r float64) []int {
	t.Helper()
	var pts []disc.Point
	var liveIDs []int
	for id := 0; id < slots; id++ {
		if u.Alive(id) {
			pts = append(pts, u.Point(id))
			liveIDs = append(liveIDs, id)
		}
	}
	if len(pts) == 0 {
		return nil
	}
	d, err := disc.New(pts, disc.WithIndex(disc.IndexCoverageGraph), disc.WithMetric(m))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Select(r, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		t.Fatal(err)
	}
	ids := append([]int(nil), res.IDs()...)
	for i, id := range ids {
		ids[i] = liveIDs[id]
	}
	sort.Ints(ids)
	return ids
}

func assertEqualsRebuild(t *testing.T, u *disc.Updater, m disc.Metric, slots int, r float64) {
	t.Helper()
	u.Flush()
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
	want := rebuildSelection(t, u, m, slots, r)
	got := u.Selection()
	if len(got) != len(want) {
		t.Fatalf("incremental selects %d, rebuild selects %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selection[%d]: incremental %d, rebuild %d", i, got[i], want[i])
		}
	}
}

// TestUpdaterEquivalentToRebuild is the conformance property test of the
// incremental path: across metrics, dimensionalities and random
// insert/delete interleavings, the converged selection must be exactly
// the one a from-scratch component-mode Select over the live points
// computes.
func TestUpdaterEquivalentToRebuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    disc.Metric
		dim  int
		r    float64
	}{
		{"euclidean-1d", disc.Euclidean(), 1, 0.04},
		{"euclidean-2d", disc.Euclidean(), 2, 0.1},
		{"manhattan-2d", disc.Manhattan(), 2, 0.12},
		{"chebyshev-3d", disc.Chebyshev(), 3, 0.18},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(17, uint64(tc.dim)))
			u, err := disc.NewUpdater(nil, tc.r, disc.WithMetric(tc.m))
			if err != nil {
				t.Fatal(err)
			}
			slots := 0
			var live []int
			for step := 0; step < 260; step++ {
				if len(live) == 0 || rng.Float64() < 0.7 {
					p := make(disc.Point, tc.dim)
					for i := range p {
						p[i] = rng.Float64()
					}
					id, err := u.Insert(p)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
					slots++
				} else {
					k := rng.IntN(len(live))
					if err := u.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:k], live[k+1:]...)
				}
				if step%50 == 0 {
					assertEqualsRebuild(t, u, tc.m, slots, tc.r)
				}
			}
			assertEqualsRebuild(t, u, tc.m, slots, tc.r)
		})
	}
}

func TestUpdaterSeededMatchesBatchSelect(t *testing.T) {
	pts := randomPoints(700, 2, 41)
	const r = 0.05
	u, err := disc.NewUpdater(pts, r)
	if err != nil {
		t.Fatal(err)
	}
	// The seed is already converged and published.
	if u.Pending() != 0 {
		t.Fatalf("seeded updater has %d dirty components", u.Pending())
	}
	d, err := disc.New(pts, disc.WithIndex(disc.IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Select(r, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), res.IDs()...)
	sort.Ints(want)
	got := u.Selection()
	if len(got) != len(want) {
		t.Fatalf("seed selects %d, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed selection differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdaterOptionValidation(t *testing.T) {
	if _, err := disc.NewUpdater(nil, -0.1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := disc.NewUpdater(nil, 0.1, disc.WithMetric(disc.Hamming())); err == nil {
		t.Error("non-grid metric accepted")
	}
	if _, err := disc.NewUpdater(nil, 0.1, disc.WithIndex(disc.IndexMTree)); err == nil {
		t.Error("conflicting index accepted")
	}
	if _, err := disc.NewUpdater(nil, 0.1, disc.WithIndex(disc.IndexCoverageGraph)); err != nil {
		t.Errorf("coverage-graph index rejected: %v", err)
	}
	u, err := disc.NewUpdater(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(disc.Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(disc.Point{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := u.Delete(42); err == nil {
		t.Error("deleting an unknown id accepted")
	}
}

func TestUpdaterSnapshotRoundTrip(t *testing.T) {
	pts := randomPoints(400, 2, 43)
	const r = 0.06
	u, err := disc.NewUpdater(pts, r)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate, then try to snapshot dirty state: must refuse.
	id, err := u.Insert(disc.Point{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err == nil {
		t.Fatal("snapshot of dirty state accepted")
	}
	u.Flush()
	if err := u.Delete(id); err != nil {
		t.Fatal(err)
	}
	u.Flush()
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// The snapshot warm-starts a Diversifier whose component-mode
	// selection equals the updater's (dense ids: no deletions survive
	// compaction here, so the id spaces coincide).
	d, err := disc.LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Select(r, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), res.IDs()...)
	sort.Ints(want)
	got := u.Selection()
	if len(got) != len(want) {
		t.Fatalf("loaded selects %d, updater %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selection differs at %d: %d vs %d", i, got[i], want[i])
		}
	}

	empty, err := disc.NewUpdater(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.WriteSnapshot(&buf); err == nil {
		t.Fatal("snapshot of empty updater accepted")
	}
}

// TestUpdaterConcurrentReadsDuringRepair hammers the lock-free read
// path while a writer mutates and flushes; run under -race (make test)
// this is the staleness-contract stress test: readers must always see a
// fully published selection, never a half-repaired one.
func TestUpdaterConcurrentReadsDuringRepair(t *testing.T) {
	pts := randomPoints(300, 2, 47)
	const r = 0.08
	u, err := disc.NewUpdater(pts, r)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sel := u.Selection()
				if len(sel) != u.Size() && u.Size() != len(u.Selection()) {
					// Size and Selection may straddle a publish; each on
					// its own must be internally consistent.
					continue
				}
				for _, id := range sel {
					_ = u.IsRepresentative(id)
				}
			}
		}(w)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	var live []int
	for id := 0; id < 300; id++ {
		live = append(live, id)
	}
	for step := 0; step < 500; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			id, err := u.Insert(disc.Point{rng.Float64(), rng.Float64()})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			k := rng.IntN(len(live))
			if err := u.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		if step%7 == 0 {
			u.Flush()
		}
	}
	u.Flush()
	close(stop)
	wg.Wait()
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
}
