package disc

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/snap"
	"github.com/discdiversity/disc/internal/vfs"
	"github.com/discdiversity/disc/internal/wal"
)

// FsyncPolicy selects when a durable Updater's write-ahead log fsyncs
// acknowledged operations. See docs/DURABILITY.md for the guarantee
// each policy buys.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before acknowledging every mutation: an
	// acknowledged op survives any crash, including power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval batches fsyncs on a timer (WithFsyncInterval): a
	// crash loses at most the ops acknowledged since the last sync.
	FsyncInterval
	// FsyncNone never fsyncs on the mutation path: a process crash
	// loses nothing (the kernel holds the writes), a machine crash can
	// lose anything since the last checkpoint.
	FsyncNone
)

// String returns the flag-friendly name ("always", "interval", "none").
func (p FsyncPolicy) String() string { return p.walMode().String() }

func (p FsyncPolicy) walMode() wal.SyncMode {
	switch p {
	case FsyncInterval:
		return wal.SyncBatched
	case FsyncNone:
		return wal.SyncNone
	default:
		return wal.SyncAlways
	}
}

// FsyncPolicyByName resolves "always", "interval" or "none" — the
// values the discserve -fsync flag accepts.
func FsyncPolicyByName(name string) (FsyncPolicy, error) {
	switch name {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("disc: unknown fsync policy %q (supported: always, interval, none)", name)
	}
}

// WithFsync sets the write-ahead-log fsync policy of OpenUpdater
// (default FsyncAlways). Ignored by constructors that take no log.
func WithFsync(p FsyncPolicy) Option {
	return func(o *options) error {
		switch p {
		case FsyncAlways, FsyncInterval, FsyncNone:
		default:
			return fmt.Errorf("disc: unknown fsync policy %v", int(p))
		}
		o.walSync = p
		return nil
	}
}

// WithFsyncInterval sets the batching window of FsyncInterval (default
// 100ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("disc: non-positive fsync interval %v", d)
		}
		o.walInterval = d
		return nil
	}
}

// WithWALSegmentBytes sets the write-ahead-log segment rotation
// threshold (default 64 MiB). Mainly for tests.
func WithWALSegmentBytes(n int64) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("disc: non-positive WAL segment size %d", n)
		}
		o.walSegment = n
		return nil
	}
}

// withWALOpenFile injects the log's file factory (fault-injection
// tests only; deliberately unexported).
func withWALOpenFile(open func(name string, create bool) (wal.File, error)) Option {
	return func(o *options) error {
		o.walOpenFile = open
		return nil
	}
}

// WithStorageFS routes every file operation OpenUpdater and the
// returned Updater perform — the snapshot read, WAL segment I/O, and
// Checkpoint's atomic snapshot save — through fsys instead of the real
// filesystem. The dataset manager uses it to run recovery and
// checkpointing under scheduled fault injection; production callers
// never need it. Ignored by constructors that take no files.
func WithStorageFS(fsys vfs.FS) Option {
	return func(o *options) error {
		if fsys == nil {
			return fmt.Errorf("disc: nil storage filesystem")
		}
		o.storageFS = fsys
		return nil
	}
}

// OpenUpdater opens (or creates) a crash-safe Updater backed by a
// snapshot file and a write-ahead log: the state at snapshotPath is
// loaded (when present), the log segments at walPath are replayed over
// it, and every subsequent Insert/Delete is appended to the log before
// it is acknowledged, under the configured FsyncPolicy. Checkpoint
// writes a fresh snapshot crash-atomically and truncates the log; a
// process killed at any instant reopens with OpenUpdater to exactly
// the acknowledged state (see docs/DURABILITY.md for the precise
// guarantees per fsync policy).
//
// When neither file exists the updater starts empty and the first
// segment of the log is created. A snapshot written by a previous
// Checkpoint records the log epoch it begins, which is how recovery
// pairs the two files; a log whose epoch is ahead of the snapshot
// (or present with no snapshot at all after a checkpoint) is refused
// rather than silently dropping acknowledged updates.
//
// Ids are dense and never reused within a process lifetime, but a
// restart that follows a Checkpoint re-identifies the live points in
// ascending id order (the compaction remap); clients must re-list
// after reconnecting, exactly as they must after a snapshot load.
//
// Respected options: everything NewUpdater takes, plus WithFsync,
// WithFsyncInterval and WithWALSegmentBytes. The snapshot must be a
// float64 coverage-graph snapshot (what Updater.Checkpoint and
// Updater.WriteSnapshot write).
//
// The durable path feeds the process-wide telemetry registry: appends,
// fsyncs, rotations and recovery replays are counted and timed
// (disc_wal_appends_total, disc_wal_fsyncs_total,
// disc_wal_replay_seconds, disc_snapshot_read_seconds, …) and exposed
// by discserve at GET /metrics; see docs/OBSERVABILITY.md.
func OpenUpdater(snapshotPath, walPath string, r float64, opts ...Option) (*Updater, error) {
	o := defaultOptions()
	// Clear the metric default so a caller-supplied metric is
	// distinguishable from "use the snapshot's" (same rule as
	// LoadDiversifier).
	o.metric = nil
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("disc: invalid radius %g", r)
	}
	if o.indexSet && o.index != IndexCoverageGraph {
		return nil, fmt.Errorf("disc: updater: index %v is not applicable; incremental repair runs on the coverage-graph substrate", o.index)
	}

	fsys := o.storageFS
	if fsys == nil {
		fsys = vfs.OS
	}

	// Load the snapshot, when present. The bytes are read through the
	// storage FS in full, then parsed in memory, so an I/O failure is
	// distinguishable from corruption (see snap.Verify).
	var s *snap.Snapshot
	if data, err := fsys.ReadFile(snapshotPath); err == nil {
		s, err = snap.Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("disc: open: %s: %w", snapshotPath, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("disc: open: %w", err)
	}

	// Resolve the metric exactly like LoadDiversifier: the snapshot's
	// recorded metric wins, a caller-supplied one may only restate it.
	metric := o.metric
	if s != nil {
		if metric != nil {
			if metric.Name() != s.Metric {
				return nil, fmt.Errorf("disc: open: snapshot was written for metric %q, not %q", s.Metric, metric.Name())
			}
		} else {
			m, err := MetricByName(s.Metric)
			if err != nil {
				return nil, fmt.Errorf("disc: open: snapshot metric %q is not built in; supply it with WithMetric", s.Metric)
			}
			metric = m
		}
	} else if metric == nil {
		metric = Euclidean()
	}
	if !grid.Supports(metric) {
		return nil, fmt.Errorf("disc: updater: metric %q does not dominate per-coordinate differences; incremental repair needs the grid substrate (use Euclidean, Manhattan or Chebyshev)", metric.Name())
	}

	epoch := uint64(0)
	u := &Updater{metric: metric, parallelism: o.parallelism, capacity: o.capacity, seed: o.seed}
	if s != nil {
		if s.Coords == nil {
			return nil, fmt.Errorf("disc: open: %s is a float32 snapshot; the live-update substrate is float64", snapshotPath)
		}
		if s.Graph != nil && s.GraphRadius != r {
			return nil, fmt.Errorf("disc: open: snapshot was checkpointed at radius %g, not %g", s.GraphRadius, r)
		}
		epoch = s.WALEpoch
		u.parallelism, u.capacity, u.seed = s.Parallelism, s.Capacity, s.Seed
		flat, err := object.NewFlatDataset(s.Coords, s.N, s.Dim, metric)
		if err != nil {
			return nil, fmt.Errorf("disc: open: %w", err)
		}
		if s.Graph != nil {
			// Warm path: adopt the persisted CSR, skipping the grid
			// build and ε-join.
			u.live, err = core.RestoreLiveDisC(flat, s.Graph, r)
		} else {
			workers := o.parallelism
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			u.live, err = core.SeedLiveDisC(flat, r, workers)
		}
		if err != nil {
			return nil, fmt.Errorf("disc: open: %w", err)
		}
	} else {
		// No snapshot. A log that has been through a checkpoint (epoch
		// > 0) depends on one: its pre-checkpoint records are gone.
		if info, err := wal.DescribeFS(fsys, walPath); err == nil && info.Epoch > 0 {
			return nil, fmt.Errorf("disc: open: log %s is at checkpoint epoch %d but snapshot %s is missing; acknowledged state would be lost", walPath, info.Epoch, snapshotPath)
		}
		live, err := core.NewLiveDisC(metric, r)
		if err != nil {
			return nil, err
		}
		u.live = live
	}

	log, ops, err := wal.Open(walPath, wal.Options{
		Epoch:        epoch,
		Radius:       r,
		Metric:       metric.Name(),
		Sync:         o.walSync.walMode(),
		Interval:     o.walInterval,
		SegmentBytes: o.walSegment,
		OpenFile:     o.walOpenFile,
		FS:           o.storageFS,
	})
	if err != nil {
		return nil, err
	}

	// Replay. The snapshot's points occupy dense ids 0..n-1 and log ids
	// continue from there, so replayed inserts must land exactly on
	// their recorded ids — any drift means the log does not belong to
	// this snapshot.
	for i, op := range ops {
		switch op.Kind {
		case wal.OpInsert:
			id, err := u.live.Insert(object.Point(op.Point))
			if err != nil {
				log.Close()
				return nil, fmt.Errorf("disc: open: replaying log record %d: %w", i, err)
			}
			if int64(id) != op.ID {
				log.Close()
				return nil, fmt.Errorf("disc: open: log record %d inserts id %d but replay assigned %d; the log does not extend this snapshot", i, op.ID, id)
			}
		case wal.OpDelete:
			if err := u.live.Delete(int(op.ID)); err != nil {
				log.Close()
				return nil, fmt.Errorf("disc: open: replaying log record %d: %w", i, err)
			}
		}
	}
	if len(ops) > 0 {
		u.live.Flush()
	}

	// The in-memory id space now coincides with the log id space:
	// identity mapping, next log id = next slot.
	slots := u.live.Slots()
	u.epochID = make([]int64, slots)
	for i := range u.epochID {
		u.epochID[i] = int64(i)
	}
	u.logNext = int64(slots)
	u.log = log
	u.fs = fsys
	return u, nil
}

// DescribeDurable reports the identity an existing write-ahead log was
// written under — its newest checkpoint epoch, radius and metric name —
// without replaying it. It returns an error wrapping os.ErrNotExist
// (test with errors.Is) when no log segment exists at walPath. Servers
// use it to rediscover live datasets at boot.
func DescribeDurable(walPath string) (epoch uint64, radius float64, metric string, err error) {
	info, err := wal.Describe(walPath)
	if err != nil {
		return 0, 0, "", err
	}
	return info.Epoch, info.Radius, info.Metric, nil
}

// IsNotExist reports whether an error from DescribeDurable (or any
// wrapped file error) means the file is simply absent.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
