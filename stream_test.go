package disc_test

import (
	"math/rand/v2"
	"testing"

	disc "github.com/discdiversity/disc"
)

func TestStreamBasicLifecycle(t *testing.T) {
	s, err := disc.NewStream(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Radius() != 0.1 || s.Len() != 0 || s.Size() != 0 {
		t.Fatal("empty stream state wrong")
	}
	a, sel, err := s.Add(disc.Point{0.5, 0.5})
	if err != nil || !sel {
		t.Fatalf("first object must be selected: sel=%v err=%v", sel, err)
	}
	_, sel, err = s.Add(disc.Point{0.52, 0.5})
	if err != nil || sel {
		t.Fatalf("covered object must not be selected: sel=%v err=%v", sel, err)
	}
	c, sel, err := s.Add(disc.Point{0.9, 0.9})
	if err != nil || !sel {
		t.Fatalf("distant object must be selected: sel=%v err=%v", sel, err)
	}
	if s.Len() != 3 || s.Size() != 2 {
		t.Fatalf("len=%d size=%d", s.Len(), s.Size())
	}
	if !s.IsRepresentative(a) || !s.IsRepresentative(c) {
		t.Error("representatives wrong")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamChurnStaysValid(t *testing.T) {
	s, err := disc.NewStream(0.07, disc.StreamCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var live []int
	for step := 0; step < 300; step++ {
		if len(live) == 0 || rng.Float64() < 0.65 {
			id, _, err := s.Add(disc.Point{rng.Float64(), rng.Float64()})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			k := rng.IntN(len(live))
			if err := s.Remove(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(live) {
		t.Errorf("live %d, want %d", s.Len(), len(live))
	}
}

func TestStreamHammingMetric(t *testing.T) {
	s, err := disc.NewStream(2, disc.StreamMetric(disc.Hamming()))
	if err != nil {
		t.Fatal(err)
	}
	if _, sel, _ := s.Add(disc.Point{0, 0, 0, 0}); !sel {
		t.Error("first selected")
	}
	if _, sel, _ := s.Add(disc.Point{0, 0, 0, 1}); sel {
		t.Error("1-differing camera should be covered at r=2")
	}
	if _, sel, _ := s.Add(disc.Point{1, 1, 1, 1}); !sel {
		t.Error("4-differing camera should be selected")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOptionValidation(t *testing.T) {
	if _, err := disc.NewStream(-1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := disc.NewStream(0.1, disc.StreamMetric(nil)); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := disc.NewStream(0.1, disc.StreamCapacity(2)); err == nil {
		t.Error("tiny capacity accepted")
	}
}

func TestVPTreeOptionMatchesMTree(t *testing.T) {
	pts := randomPoints(400, 2, 33)
	dm, err := disc.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := disc.New(pts, disc.WithVPTree())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0.05, 0.15} {
		a, err := dm.Select(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dv.Select(r)
		if err != nil {
			t.Fatal(err)
		}
		if a.Jaccard(b) != 0 {
			t.Errorf("r=%g: M-tree and VP-tree selections differ", r)
		}
		if err := dv.Verify(b); err != nil {
			t.Error(err)
		}
	}
	if _, err := disc.New(pts, disc.WithVPTree(), disc.WithLinearScan()); err == nil {
		t.Error("conflicting index options accepted")
	}
}

func TestExtensionsAPI(t *testing.T) {
	pts := randomPoints(300, 2, 34)
	d, err := disc.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = float64(i % 17)
	}
	res, err := d.SelectWeighted(0.1, weights)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight(weights) <= 0 {
		t.Error("zero total weight")
	}
	if _, err := d.SelectWeighted(0.1, weights[:5]); err == nil {
		t.Error("wrong weight count accepted")
	}

	radii := make([]float64, len(pts))
	for i := range radii {
		radii[i] = 0.05 + 0.1*float64(i%3)/2
	}
	mres, err := d.SelectMultiRadius(radii)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyMultiRadius(mres); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(mres); err != nil {
		t.Fatal(err) // Verify routes to multi-radius checking
	}
	if _, err := d.ZoomIn(mres, 0.01); err == nil {
		t.Error("zooming a multi-radius result accepted")
	}
	if err := d.VerifyMultiRadius(res); err == nil {
		t.Error("VerifyMultiRadius accepted a plain result")
	}
}
