package disc

import (
	"fmt"
	"io"
	"strings"

	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/object"
)

// Point is a vector in d-dimensional space; for categorical data each
// coordinate holds a category code (compare with Hamming()).
type Point = object.Point

// Metric is a distance function satisfying the metric axioms; the M-tree
// index relies on the triangle inequality.
type Metric = object.Metric

// Neighbor pairs an object ID with its distance from a query object.
type Neighbor = object.Neighbor

// CoordinatewiseMonotone marks metrics safe for box-pruning indexes
// (IndexRTree, IndexCoverageGraph): the distance must never decrease
// when a single coordinate of one argument moves away from the other's.
// All built-in metrics implement it; custom metrics opt in by adding an
// empty CoordinatewiseMonotone() method — only when the property truly
// holds, otherwise the R-tree prunes true neighbours.
type CoordinatewiseMonotone = object.CoordinatewiseMonotone

// Dataset bundles points with optional labels and attribute metadata.
type Dataset = object.Dataset

// Index selects the neighbourhood-search backend a Diversifier queries.
// All backends return identical selections under the deterministic
// greedy algorithms; they differ only in build cost, query cost and
// metric support. See the "Index backends" section of the package
// documentation for guidance.
type Index int

const (
	// IndexMTree is the paper's M-tree (default): a dynamic metric index
	// that works with any metric and reports node accesses, the paper's
	// cost measure.
	IndexMTree Index = iota
	// IndexLinearScan scans all points per query: no build cost, exact,
	// best for small inputs.
	IndexLinearScan
	// IndexVPTree is a static vantage-point tree: a simpler metric index
	// with cheaper construction than the M-tree.
	IndexVPTree
	// IndexRTree is a bulk-loaded (STR-packed) R-tree: near-100% node
	// utilisation and fast deterministic builds. Restricted to
	// coordinate-wise monotone metrics; every built-in metric qualifies.
	IndexRTree
	// IndexCoverageGraph materialises the full r-coverage graph once per
	// radius using all cores (see WithParallelism), then answers every
	// neighbourhood query in O(degree). The best choice when one radius
	// is queried repeatedly, as the greedy heuristics do. For Lp metrics
	// the graph is built by the grid ε-join (see IndexGrid) in
	// O(n + candidate pairs).
	IndexCoverageGraph
	// IndexGrid is a uniform-grid spatial hash with cell side equal to
	// the selection radius: queries scan only the ±1 cell ring, and the
	// O(n) counting-sort bucketing makes it the cheapest index to
	// (re)build. Restricted to metrics whose distance dominates every
	// per-coordinate difference (Euclidean, Manhattan, Chebyshev — not
	// Hamming).
	IndexGrid
)

// SelectMode chooses how Select executes the Greedy-DisC family. All
// modes return the same selected subset; they differ in execution
// strategy and cost.
type SelectMode int

const (
	// SelectGlobal (the default) runs the heuristic sequentially over
	// the whole object universe, exactly as the paper describes it.
	SelectGlobal SelectMode = iota
	// SelectComponents decomposes the r-coverage graph into connected
	// components and runs the greedy per component on a worker pool
	// (see WithSelectParallelism): a dominating set of a disconnected
	// graph is the union of its components' dominating sets, so the
	// selected subset is identical to SelectGlobal's while singleton and
	// two-member components short-circuit, large components run against
	// component-sized state, and independent components execute
	// concurrently. Output is bit-identical for every worker count.
	// Supported by the Greedy-DisC algorithms (AlgorithmGreedy,
	// AlgorithmGreedyWhite, AlgorithmLazyGrey, AlgorithmLazyWhite);
	// Basic-DisC and the coverage-only algorithms reject it.
	SelectComponents
)

// String implements fmt.Stringer.
func (m SelectMode) String() string {
	switch m {
	case SelectGlobal:
		return "global"
	case SelectComponents:
		return "components"
	default:
		return fmt.Sprintf("select-mode(%d)", int(m))
	}
}

// String implements fmt.Stringer.
func (ix Index) String() string {
	switch ix {
	case IndexMTree:
		return "mtree"
	case IndexLinearScan:
		return "flat"
	case IndexVPTree:
		return "vptree"
	case IndexRTree:
		return "rtree"
	case IndexCoverageGraph:
		return "coverage-graph"
	case IndexGrid:
		return "grid"
	default:
		return fmt.Sprintf("index(%d)", int(ix))
	}
}

// indexNames maps every supported backend to its String() name, in
// display order; IndexByName and option errors derive from it so the
// supported-name list can never drift from the Index constants.
var indexNames = []Index{IndexMTree, IndexLinearScan, IndexVPTree, IndexRTree, IndexCoverageGraph, IndexGrid}

// SupportedIndexNames returns the names IndexByName accepts, in display
// order.
func SupportedIndexNames() []string {
	names := make([]string, len(indexNames))
	for i, ix := range indexNames {
		names[i] = ix.String()
	}
	return names
}

// IndexByName resolves an index backend from its String() name
// ("mtree", "flat", "vptree", "rtree", "coverage-graph", "grid").
// Unknown names fail immediately with the supported list in the error,
// so misconfiguration surfaces when the option is parsed rather than at
// Diversify time.
func IndexByName(name string) (Index, error) {
	for _, ix := range indexNames {
		if name == ix.String() {
			return ix, nil
		}
	}
	return 0, fmt.Errorf("disc: unknown index %q (supported: %s)", name, strings.Join(SupportedIndexNames(), ", "))
}

// Precision selects the coordinate storage width of a Diversifier (see
// WithPrecision).
type Precision = object.Precision

const (
	// PrecisionFloat64 stores coordinates at full double precision (the
	// default).
	PrecisionFloat64 = object.Float64
	// PrecisionFloat32 rounds coordinates to float32 at ingest and keeps
	// a cache-aligned float32 mirror the batched kernels pre-filter on.
	// Distances are still evaluated in exact float64 arithmetic over the
	// rounded values, so selections stay bit-identical across backends.
	PrecisionFloat32 = object.Float32
)

// Euclidean returns the L2 metric (the library default).
func Euclidean() Metric { return object.Euclidean{} }

// Manhattan returns the L1 metric.
func Manhattan() Metric { return object.Manhattan{} }

// Chebyshev returns the L∞ metric.
func Chebyshev() Metric { return object.Chebyshev{} }

// Hamming returns the categorical metric counting differing coordinates,
// suited to datasets whose coordinates are category codes.
func Hamming() Metric { return object.Hamming{} }

// Cosine returns the angular dissimilarity 1 − cos(a, b), the standard
// distance for embedding vectors. It is symmetric and non-negative but
// violates the triangle inequality, so the ball- and box-pruning
// backends reject it; IndexCoverageGraph (which serves it with the
// batched flat join — the auto-selected default for this metric) and
// IndexLinearScan support it. The zero vector is at distance 1 from
// everything, including itself.
func Cosine() Metric { return object.Cosine{} }

// InnerProduct returns the dissimilarity 1 − ⟨a, b⟩, the inner-product
// surrogate used for maximum-inner-product retrieval over normalised
// embeddings. Like Cosine it violates the triangle inequality (and even
// d(x,x) = 0), so only the scan-based backends serve it; it is mainly
// useful when vectors are pre-normalised and the 1 − dot ranking is the
// quantity of interest.
func InnerProduct() Metric { return object.DotProduct{} }

// MetricByName resolves "euclidean", "manhattan", "chebyshev",
// "hamming", "cosine" or "dot" (plus the aliases "l1", "l2", "linf" and
// "inner-product").
func MetricByName(name string) (Metric, error) { return object.MetricByName(name) }

// ReadCSV parses a dataset written by Dataset.WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) { return object.ReadCSV(r) }

// UniformDataset generates n points uniformly distributed in [0,1]^d,
// deterministically for a given seed.
func UniformDataset(n, d int, seed uint64) (*Dataset, error) {
	return dataset.Uniform(n, d, seed)
}

// ClusteredDataset generates n points forming hyperspherical clusters of
// different sizes in [0,1]^d (clusters <= 0 selects a default of 10).
func ClusteredDataset(n, d, clusters int, seed uint64) (*Dataset, error) {
	return dataset.Clustered(n, d, clusters, seed)
}

// CitiesDataset returns the 5922-point geographic workload modelled on
// the paper's Greek cities collection (see DESIGN.md for the
// substitution).
func CitiesDataset(seed uint64) *Dataset { return dataset.Cities(seed) }

// CamerasDataset returns the 579-camera categorical workload modelled on
// the paper's Acme camera database; use Hamming() with it.
func CamerasDataset(seed uint64) *Dataset { return dataset.Cameras(seed) }
