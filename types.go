package disc

import (
	"io"

	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/object"
)

// Point is a vector in d-dimensional space; for categorical data each
// coordinate holds a category code (compare with Hamming()).
type Point = object.Point

// Metric is a distance function satisfying the metric axioms; the M-tree
// index relies on the triangle inequality.
type Metric = object.Metric

// Neighbor pairs an object ID with its distance from a query object.
type Neighbor = object.Neighbor

// Dataset bundles points with optional labels and attribute metadata.
type Dataset = object.Dataset

// Euclidean returns the L2 metric (the library default).
func Euclidean() Metric { return object.Euclidean{} }

// Manhattan returns the L1 metric.
func Manhattan() Metric { return object.Manhattan{} }

// Chebyshev returns the L∞ metric.
func Chebyshev() Metric { return object.Chebyshev{} }

// Hamming returns the categorical metric counting differing coordinates,
// suited to datasets whose coordinates are category codes.
func Hamming() Metric { return object.Hamming{} }

// MetricByName resolves "euclidean", "manhattan", "chebyshev" or
// "hamming" (plus the aliases "l1", "l2", "linf").
func MetricByName(name string) (Metric, error) { return object.MetricByName(name) }

// ReadCSV parses a dataset written by Dataset.WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) { return object.ReadCSV(r) }

// UniformDataset generates n points uniformly distributed in [0,1]^d,
// deterministically for a given seed.
func UniformDataset(n, d int, seed uint64) (*Dataset, error) {
	return dataset.Uniform(n, d, seed)
}

// ClusteredDataset generates n points forming hyperspherical clusters of
// different sizes in [0,1]^d (clusters <= 0 selects a default of 10).
func ClusteredDataset(n, d, clusters int, seed uint64) (*Dataset, error) {
	return dataset.Clustered(n, d, clusters, seed)
}

// CitiesDataset returns the 5922-point geographic workload modelled on
// the paper's Greek cities collection (see DESIGN.md for the
// substitution).
func CitiesDataset(seed uint64) *Dataset { return dataset.Cities(seed) }

// CamerasDataset returns the 579-camera categorical workload modelled on
// the paper's Acme camera database; use Hamming() with it.
func CamerasDataset(seed uint64) *Dataset { return dataset.Cameras(seed) }
