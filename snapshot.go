package disc

import (
	"fmt"
	"io"
	"math"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/snap"
)

// Prepare eagerly builds the radius-dependent index artifacts for
// selection radius r — the grid occupancy for IndexGrid, the occupancy
// plus the coverage-graph CSR and its connected-component decomposition
// for IndexCoverageGraph — without running a selection. For the
// radius-independent backends it is a no-op. Use it before WriteSnapshot
// to capture a warm snapshot for a radius that has not been selected at
// yet, or at service start to pay the build cost before the first
// request.
func (d *Diversifier) Prepare(r float64) error {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("disc: invalid radius %g", r)
	}
	e, err := d.engineForRadius(r, true)
	if err != nil {
		return err
	}
	if g, ok := e.(*core.ParallelGraphEngine); ok && g.Radius() == r {
		// Populate the component cache so component-mode selections — and
		// the snapshot's components section — are ready before first use.
		g.Components(r)
	}
	return nil
}

// WriteSnapshot serialises the diversifier to the versioned .discsnap
// binary format (see internal/snap for the layout): always the dataset
// (metric plus row-major coordinates, at the diversifier's configured
// precision — a Float32 diversifier persists the float32 coordinates
// and the squared-norm cache of the embedding metrics) and the
// configured backend with its build parameters (seed, parallelism,
// M-tree capacity), plus whatever prepared per-radius artifacts the
// current engine holds — the grid occupancy for IndexGrid; for
// IndexCoverageGraph the coverage-graph CSR and (when already derived)
// its connected-component decomposition, together with the grid
// occupancy when the graph was grid-joined (the flat-join substrate has
// no occupancy to persist). Backends that rebuild cheaply or
// deterministically from the dataset (M-tree, VP-tree, R-tree, linear
// scan, and the coverage graph's R-tree path) persist the dataset only
// and are rebuilt on load.
//
// A snapshot written before any Select or Prepare call carries no
// artifacts; LoadDiversifier then behaves like New over the same
// points.
func (d *Diversifier) WriteSnapshot(w io.Writer) error {
	s := &snap.Snapshot{
		Index:       d.index.String(),
		Parallelism: d.parallelism,
		Capacity:    d.capacity,
		Seed:        d.seed,
		Metric:      d.metric.Name(),
	}
	switch e := d.engine.(type) {
	case *core.ParallelGraphEngine:
		if e.GridJoined() || e.FlatJoined() {
			if e.GridJoined() {
				p := e.Grid().Parts()
				s.Grid = &p
			}
			s.Graph = e.CSR()
			s.GraphRadius = e.Radius()
			// The component decomposition is persisted opportunistically:
			// present whenever the engine has derived (or loaded) it —
			// Prepare and component-mode selections both populate it — so
			// a warm start skips the labeling pass too.
			if cp := e.CachedComponents(); cp != nil {
				s.ComponentCount = cp.Count
				s.ComponentLabels = cp.Label
			}
		}
	case *core.GridEngine:
		p := e.Grid().Parts()
		s.Grid = &p
	}
	flat := d.flat
	s.N, s.Dim = flat.Len(), flat.Dim()
	if flat.Precision() == PrecisionFloat32 {
		// De-pad the aligned mirror into the wire layout; the norms cache
		// rides along so embedding-metric loads skip recomputing it.
		stride, dim := flat.Stride32(), flat.Dim()
		src := flat.Coords32()
		c := make([]float32, s.N*dim)
		for i := 0; i < s.N; i++ {
			copy(c[i*dim:(i+1)*dim], src[i*stride:i*stride+dim])
		}
		s.Coords32 = c
		s.SqNorms = flat.SqNorms()
	} else {
		s.Coords = flat.Coords()
	}
	if err := snap.Write(w, s); err != nil {
		return fmt.Errorf("disc: snapshot: %w", err)
	}
	return nil
}

// SaveSnapshot writes the snapshot to path crash-atomically: the bytes
// are produced into a same-directory temp file, fsynced, renamed over
// path, and the parent directory is fsynced — so a crash at any
// instant leaves either the complete old file or the complete new one.
// Use it instead of WriteSnapshot whenever the destination is a file.
func (d *Diversifier) SaveSnapshot(path string) error {
	return snap.WriteFileAtomic(path, d.WriteSnapshot)
}

// LoadDiversifier reconstructs a Diversifier from a snapshot written by
// WriteSnapshot. The dataset is aliased straight out of the decoded
// buffer (no per-point copies), and any persisted artifacts are
// rehydrated into the same lazy-engine machinery a fresh Diversifier
// uses: a Select or zoom at the snapshot's radius starts from the
// loaded coverage graph or grid occupancy instead of rebuilding it,
// and other radii degrade to exactly the rebuild rules of a fresh
// instance. Loaded engines are bit-identical to freshly built ones —
// same selections, same neighbour lists.
//
// Options are applied on top of the snapshot's recorded configuration
// (index, parallelism, M-tree capacity, construction seed):
// WithIndex/WithIndexName override the backend (artifacts the new
// backend cannot use are ignored and it is built from the dataset), and
// WithParallelism/WithMTreeCapacity/WithSeed override the recorded
// build parameters. WithMetric may only restate the snapshot's metric —
// the coordinates were indexed under it, so a conflicting metric is an
// error rather than a silent reinterpretation. Snapshots written under
// a custom (non-built-in) metric require the caller to supply that
// metric via WithMetric, since only its name is persisted.
func LoadDiversifier(r io.Reader, opts ...Option) (*Diversifier, error) {
	s, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("disc: load: %w", err)
	}
	// Defaults come from New's, overlaid with the snapshot's recorded
	// configuration, overlaid with the caller's options. The metric
	// default is cleared so a caller-supplied custom metric is
	// distinguishable from "use the snapshot's".
	o := defaultOptions()
	o.metric = nil
	o.seed = s.Seed
	o.parallelism = s.Parallelism
	if s.Capacity >= 4 {
		o.capacity = s.Capacity
	}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.metric == nil {
		m, err := MetricByName(s.Metric)
		if err != nil {
			return nil, fmt.Errorf("disc: load: snapshot metric %q is not built in; supply it with WithMetric", s.Metric)
		}
		o.metric = m
	} else if o.metric.Name() != s.Metric {
		return nil, fmt.Errorf("disc: load: snapshot was written for metric %q, not %q", s.Metric, o.metric.Name())
	}
	if !o.indexSet && s.Index != "" {
		ix, err := IndexByName(s.Index)
		if err != nil {
			return nil, fmt.Errorf("disc: load: snapshot index: %w", err)
		}
		o.index = ix
	}

	var flat *object.FlatDataset
	if s.Coords32 != nil {
		flat, err = object.NewFlatDataset32(s.Coords32, s.N, s.Dim, o.metric, s.SqNorms)
	} else {
		flat, err = object.NewFlatDataset(s.Coords, s.N, s.Dim, o.metric)
	}
	if err != nil {
		return nil, fmt.Errorf("disc: load: %w", err)
	}
	d := &Diversifier{
		points:      flat.Points(),
		flat:        flat,
		metric:      o.metric,
		index:       o.index,
		parallelism: o.parallelism,
		capacity:    o.capacity,
		seed:        o.seed,
	}

	// Rehydrate persisted artifacts when the chosen backend can use
	// them; FromParts and the Rehydrate constructors revalidate every
	// structural invariant, so a logically inconsistent snapshot fails
	// here instead of answering queries wrongly.
	switch o.index {
	case IndexCoverageGraph:
		if s.Graph != nil {
			var e *core.ParallelGraphEngine
			switch {
			case s.Grid != nil && grid.Supports(o.metric):
				h, err := grid.FromParts(flat, *s.Grid)
				if err != nil {
					return nil, fmt.Errorf("disc: load: %w", err)
				}
				if e, err = core.RehydrateGraphEngine(h, s.Graph, s.GraphRadius, o.parallelism); err != nil {
					return nil, fmt.Errorf("disc: load: %w", err)
				}
			case s.Grid == nil:
				// A graph without an occupancy was flat-joined; its only
				// substrate is the dataset itself.
				if e, err = core.RehydrateFlatGraphEngine(flat, s.Graph, s.GraphRadius, o.parallelism); err != nil {
					return nil, fmt.Errorf("disc: load: %w", err)
				}
			}
			if e != nil {
				if s.ComponentLabels != nil {
					if err := e.InstallComponents(s.ComponentLabels, s.ComponentCount); err != nil {
						return nil, fmt.Errorf("disc: load: %w", err)
					}
				}
				d.engine = e
				return d, nil
			}
		}
	case IndexGrid:
		if s.Grid != nil {
			h, err := grid.FromParts(flat, *s.Grid)
			if err != nil {
				return nil, fmt.Errorf("disc: load: %w", err)
			}
			d.engine = core.RehydrateGridEngine(h)
			return d, nil
		}
	}
	e, err := initialEngine(o, flat, d.points)
	if err != nil {
		return nil, err
	}
	d.engine = e
	return d, nil
}
