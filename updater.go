package disc

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/snap"
	"github.com/discdiversity/disc/internal/vfs"
	"github.com/discdiversity/disc/internal/wal"
)

// Updater maintains an r-DisC diverse selection under live inserts and
// deletes, repairing only the connected components a mutation touches
// instead of re-running the batch selection. It is built on the same
// grid/CSR substrate as IndexCoverageGraph — mutable grid occupancy,
// spliced CSR adjacency, component labels — and is property-tested to
// stay exactly equivalent to a rebuild: after Flush, the selection is
// the one Select(r, WithSelectMode(SelectComponents)) would compute
// over the current live points from scratch.
//
// # Staleness contract
//
// Reads are bounded-stale: Selection, IsRepresentative and Size answer
// from the last converged selection, published atomically by Flush (and
// by the constructor). Mutations mark the touched components dirty but
// never change what readers see, so a read during a burst of updates is
// a consistent DisC-diverse selection of some recent state — never a
// half-repaired one. Flush is the convergence barrier: it re-runs the
// pruned component greedy over exactly the dirty components and
// publishes the result; Pending reports the number of components
// awaiting repair.
//
// Mutations and Flush serialise on an internal lock; reads are
// lock-free. An Updater is therefore safe for any number of concurrent
// readers alongside one or more writers.
//
// Ids are assigned densely at insert and never reused; deleted ids stay
// tombstoned internally until a snapshot compaction. Only grid-servable
// metrics (Euclidean, Manhattan, Chebyshev) support incremental repair
// — for other metrics use Stream's arrival-order maintainer or batch
// Select.
//
// Inserts, deletes and Flush repairs feed the process-wide telemetry
// registry (disc_live_insert_seconds, disc_live_delete_seconds,
// disc_live_repair_seconds, disc_live_repaired_components_total —
// exposed by discserve at GET /metrics; see docs/OBSERVABILITY.md).
// The instrumentation is atomic adds only, so the lock-free reads stay
// 0 alloc/op with telemetry enabled (pinned by test).
type Updater struct {
	mu          sync.Mutex
	live        *core.LiveDisC
	metric      Metric
	parallelism int
	capacity    int
	seed        uint64

	// Durability state, nil/zero for updaters without a write-ahead log
	// (see OpenUpdater). epochID maps in-memory ids to log-space ids:
	// identity at open, rebuilt from the compaction remap at every
	// Checkpoint. logNext is the next log id to assign. A failed append
	// or rotation poisons the log (the file may hold a torn frame), so
	// all further mutations fail rather than silently diverging from
	// the recovered state.
	log     *wal.Log
	epochID []int64
	logNext int64
	closed  bool
	// fs is the storage filesystem for checkpoint snapshot writes (set
	// by OpenUpdater; nil means the real filesystem).
	fs vfs.FS
}

// NewUpdater builds an Updater for radius r, seeded with points (which
// may be empty — the dimensionality is then fixed by the first Insert).
// A non-empty seed runs the batch pipeline once (grid build, ε-join,
// component labeling, component-decomposed greedy), so the first
// published selection is exactly the batch selection.
//
// Respected options: WithMetric (must be grid-servable), WithParallelism
// (ε-join sharding for the seed build), WithSeed and WithMTreeCapacity
// (recorded for snapshot round trips). The index is not configurable —
// an Updater is the coverage-graph substrate — so WithIndex of anything
// but IndexCoverageGraph is an error.
func NewUpdater(points []Point, r float64, opts ...Option) (*Updater, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("disc: invalid radius %g", r)
	}
	if o.indexSet && o.index != IndexCoverageGraph {
		return nil, fmt.Errorf("disc: updater: index %v is not applicable; incremental repair runs on the coverage-graph substrate", o.index)
	}
	if !grid.Supports(o.metric) {
		return nil, fmt.Errorf("disc: updater: metric %q does not dominate per-coordinate differences; incremental repair needs the grid substrate (use Euclidean, Manhattan or Chebyshev)", o.metric.Name())
	}
	u := &Updater{metric: o.metric, parallelism: o.parallelism, capacity: o.capacity, seed: o.seed}
	if len(points) == 0 {
		live, err := core.NewLiveDisC(o.metric, r)
		if err != nil {
			return nil, err
		}
		u.live = live
		return u, nil
	}
	if _, err := object.ValidatePoints(points); err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	flat, err := object.Flatten(points, o.metric)
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	live, err := core.SeedLiveDisC(flat, r, workers)
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	u.live = live
	return u, nil
}

// Insert adds p and returns its assigned id. The affected component
// (the union of the components of p's in-range neighbours) is marked
// dirty; the published selection is unchanged until Flush. A durable
// updater (OpenUpdater) appends the op to its write-ahead log — under
// the configured fsync policy — before returning; an error means the
// op is not acknowledged and may not survive a restart.
func (u *Updater) Insert(p Point) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return 0, fmt.Errorf("disc: updater is closed")
	}
	id, err := u.live.Insert(p)
	if err != nil || u.log == nil {
		return id, err
	}
	logID := u.logNext
	u.logNext++
	for len(u.epochID) < u.live.Slots() {
		u.epochID = append(u.epochID, -1)
	}
	u.epochID[id] = logID
	if err := u.log.Append(wal.Op{Kind: wal.OpInsert, ID: logID, Point: p}); err != nil {
		return 0, err
	}
	return id, nil
}

// Delete retracts a live object. Its component is re-partitioned (a
// delete can split it) and every resulting part marked dirty; the
// published selection is unchanged until Flush. A durable updater
// logs the op before returning, like Insert.
func (u *Updater) Delete(id int) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return fmt.Errorf("disc: updater is closed")
	}
	if err := u.live.Delete(id); err != nil {
		return err
	}
	if u.log == nil {
		return nil
	}
	return u.log.Append(wal.Op{Kind: wal.OpDelete, ID: u.epochID[id]})
}

// Flush repairs every dirty component and publishes the converged
// selection, returning the number of components repaired. After Flush,
// reads see a selection identical to a from-scratch component-mode
// Select over the live points.
func (u *Updater) Flush() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Flush()
}

// Pending returns the number of components awaiting repair.
func (u *Updater) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Pending()
}

// Selection returns the ids of the last published selection in
// ascending order. Lock-free and safe for concurrent use; the slice is
// shared and must not be modified.
func (u *Updater) Selection() []int { return u.live.Selection() }

// Size returns the size of the last published selection. Lock-free.
func (u *Updater) Size() int { return u.live.Size() }

// IsRepresentative reports whether id is selected in the last published
// selection. Lock-free.
func (u *Updater) IsRepresentative(id int) bool { return u.live.IsRepresentative(id) }

// Radius returns the maintained diversification radius.
func (u *Updater) Radius() float64 { return u.live.Radius() }

// Len returns the number of live objects.
func (u *Updater) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Len()
}

// Dim returns the dimensionality of the maintained points (0 until the
// first point fixes it).
func (u *Updater) Dim() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Dim()
}

// Alive reports whether id names a live (not deleted) object.
func (u *Updater) Alive(id int) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Alive(id)
}

// Point returns a copy of the coordinates of object id (tombstoned ids
// included).
func (u *Updater) Point(id int) Point {
	u.mu.Lock()
	defer u.mu.Unlock()
	return Point(u.live.Point(id))
}

// Accesses returns the cumulative objects-examined count across
// neighbourhood queries and repairs.
func (u *Updater) Accesses() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Accesses()
}

// Verify checks the DisC invariants of the converged selection by
// direct distance computation (O(n·|S|); tests and debugging). It
// errors when repairs are pending — Flush first.
func (u *Updater) Verify() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Verify()
}

// WriteSnapshot persists the updater's compacted state to the .discsnap
// format (see docs/SNAPSHOT_FORMAT.md): tombstones are squeezed out, so
// the snapshot carries the live points densely re-identified in
// ascending id order, together with the grid occupancy, the coverage
// CSR and the component labels — exactly what a coverage-graph snapshot
// written by Diversifier.WriteSnapshot after Prepare carries, so
// LoadDiversifier warm-starts from it directly.
//
// Snapshotting dirty state would persist a selection the repairs have
// already invalidated, so WriteSnapshot refuses while Pending > 0; call
// Flush first. An empty updater has nothing to persist and is refused
// too.
func (u *Updater) WriteSnapshot(w io.Writer) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p := u.live.Pending(); p > 0 {
		return fmt.Errorf("disc: snapshot: %d components pending repair; call Flush first", p)
	}
	s, _, err := u.buildSnapshot()
	if err != nil {
		return err
	}
	if err := snap.Write(w, s); err != nil {
		return fmt.Errorf("disc: snapshot: %w", err)
	}
	return nil
}

// buildSnapshot compacts the live state into a snap.Snapshot (WALEpoch
// unset) plus the compaction remap. Caller holds u.mu and has checked
// Pending.
func (u *Updater) buildSnapshot() (*snap.Snapshot, []int32, error) {
	if u.live.Len() == 0 {
		return nil, nil, fmt.Errorf("disc: snapshot: updater holds no live objects")
	}
	flat, remap, csr, comp, err := u.live.Compact()
	if err != nil {
		return nil, nil, fmt.Errorf("disc: snapshot: %w", err)
	}
	g, err := grid.Build(flat, u.live.Radius())
	if err != nil {
		return nil, nil, fmt.Errorf("disc: snapshot: %w", err)
	}
	parts := g.Parts()
	return &snap.Snapshot{
		Index:           IndexCoverageGraph.String(),
		Parallelism:     u.parallelism,
		Capacity:        u.capacity,
		Seed:            u.seed,
		Metric:          u.metric.Name(),
		N:               flat.Len(),
		Dim:             flat.Dim(),
		Coords:          flat.Coords(),
		Grid:            &parts,
		GraphRadius:     u.live.Radius(),
		Graph:           csr,
		ComponentCount:  comp.Count,
		ComponentLabels: comp.Label,
	}, remap, nil
}

// SaveSnapshot writes the compacted state to path crash-atomically
// (temp file + fsync + rename + parent-directory fsync). For a durable
// updater this is a full Checkpoint — the write-ahead log is rotated
// and truncated in the same operation; for a plain updater it is an
// atomic WriteSnapshot. Pending repairs are flushed first (the
// snapshot must carry a converged selection).
func (u *Updater) SaveSnapshot(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.checkpointLocked(path)
}

// Checkpoint is SaveSnapshot under its durability-lifecycle name: it
// flushes pending repairs, writes the compacted state to path
// crash-atomically, and — when the updater carries a write-ahead log —
// advances the log to a fresh epoch and deletes the now-covered
// segments. A crash at any instant leaves either the old
// (snapshot, log) pair or the new one recoverable: the snapshot names
// the epoch it begins, and OpenUpdater replays only segments stamped
// with it.
func (u *Updater) Checkpoint(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.checkpointLocked(path)
}

func (u *Updater) checkpointLocked(path string) error {
	u.live.Flush()
	s, remap, err := u.buildSnapshot()
	if err != nil {
		return err
	}
	if u.log == nil {
		return snap.WriteFileAtomicFS(u.fs, path, func(w io.Writer) error {
			if err := snap.Write(w, s); err != nil {
				return fmt.Errorf("disc: snapshot: %w", err)
			}
			return nil
		})
	}
	newEpoch := u.log.Epoch() + 1
	s.WALEpoch = newEpoch
	// Snapshot first, then rotate: if the process dies between the two,
	// recovery sees a snapshot at the new epoch next to segments of the
	// old one — which it discards as fully covered, exactly right,
	// because the snapshot already contains every op they hold.
	if err := snap.WriteFileAtomicFS(u.fs, path, func(w io.Writer) error {
		if err := snap.Write(w, s); err != nil {
			return fmt.Errorf("disc: snapshot: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := u.log.Rotate(newEpoch); err != nil {
		return err
	}
	// The log id space restarts at the compacted dense ids; in-memory
	// ids are untouched (clients keep their handles), only the mapping
	// changes.
	live := int64(0)
	for old, nw := range remap {
		if nw >= 0 {
			u.epochID[old] = int64(nw)
			live++
		} else if u.live.Alive(old) {
			// Cannot happen: remap drops exactly the tombstones.
			return fmt.Errorf("disc: checkpoint: live id %d missing from compaction remap", old)
		}
	}
	u.logNext = live
	return nil
}

// Durable reports whether the updater is backed by a write-ahead log
// (constructed by OpenUpdater).
func (u *Updater) Durable() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.log != nil
}

// WALBroken returns the error that poisoned the write-ahead log (a
// failed append, fsync or rotation), or nil while the log is healthy
// or absent. A poisoned updater refuses further mutations; its
// in-memory state may hold operations that were never acknowledged, so
// a supervisor must recover from disk — the acknowledged prefix — not
// from this instance.
func (u *Updater) WALBroken() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.log == nil {
		return nil
	}
	return u.log.Broken()
}

// SyncWAL forces an fsync of the write-ahead log regardless of the
// configured policy; a no-op without one.
func (u *Updater) SyncWAL() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.log == nil {
		return nil
	}
	return u.log.Sync()
}

// Close syncs and closes the write-ahead log, if any. The updater's
// in-memory state stays readable, but further mutations on a durable
// updater will fail. Safe to call on a plain updater and idempotent.
func (u *Updater) Close() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.log == nil {
		return nil
	}
	err := u.log.Close()
	u.log = nil
	u.closed = true
	return err
}
