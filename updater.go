package disc

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/snap"
)

// Updater maintains an r-DisC diverse selection under live inserts and
// deletes, repairing only the connected components a mutation touches
// instead of re-running the batch selection. It is built on the same
// grid/CSR substrate as IndexCoverageGraph — mutable grid occupancy,
// spliced CSR adjacency, component labels — and is property-tested to
// stay exactly equivalent to a rebuild: after Flush, the selection is
// the one Select(r, WithSelectMode(SelectComponents)) would compute
// over the current live points from scratch.
//
// # Staleness contract
//
// Reads are bounded-stale: Selection, IsRepresentative and Size answer
// from the last converged selection, published atomically by Flush (and
// by the constructor). Mutations mark the touched components dirty but
// never change what readers see, so a read during a burst of updates is
// a consistent DisC-diverse selection of some recent state — never a
// half-repaired one. Flush is the convergence barrier: it re-runs the
// pruned component greedy over exactly the dirty components and
// publishes the result; Pending reports the number of components
// awaiting repair.
//
// Mutations and Flush serialise on an internal lock; reads are
// lock-free. An Updater is therefore safe for any number of concurrent
// readers alongside one or more writers.
//
// Ids are assigned densely at insert and never reused; deleted ids stay
// tombstoned internally until a snapshot compaction. Only grid-servable
// metrics (Euclidean, Manhattan, Chebyshev) support incremental repair
// — for other metrics use Stream's arrival-order maintainer or batch
// Select.
type Updater struct {
	mu          sync.Mutex
	live        *core.LiveDisC
	metric      Metric
	parallelism int
	capacity    int
	seed        uint64
}

// NewUpdater builds an Updater for radius r, seeded with points (which
// may be empty — the dimensionality is then fixed by the first Insert).
// A non-empty seed runs the batch pipeline once (grid build, ε-join,
// component labeling, component-decomposed greedy), so the first
// published selection is exactly the batch selection.
//
// Respected options: WithMetric (must be grid-servable), WithParallelism
// (ε-join sharding for the seed build), WithSeed and WithMTreeCapacity
// (recorded for snapshot round trips). The index is not configurable —
// an Updater is the coverage-graph substrate — so WithIndex of anything
// but IndexCoverageGraph is an error.
func NewUpdater(points []Point, r float64, opts ...Option) (*Updater, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("disc: invalid radius %g", r)
	}
	if o.indexSet && o.index != IndexCoverageGraph {
		return nil, fmt.Errorf("disc: updater: index %v is not applicable; incremental repair runs on the coverage-graph substrate", o.index)
	}
	if !grid.Supports(o.metric) {
		return nil, fmt.Errorf("disc: updater: metric %q does not dominate per-coordinate differences; incremental repair needs the grid substrate (use Euclidean, Manhattan or Chebyshev)", o.metric.Name())
	}
	u := &Updater{metric: o.metric, parallelism: o.parallelism, capacity: o.capacity, seed: o.seed}
	if len(points) == 0 {
		live, err := core.NewLiveDisC(o.metric, r)
		if err != nil {
			return nil, err
		}
		u.live = live
		return u, nil
	}
	if _, err := object.ValidatePoints(points); err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	flat, err := object.Flatten(points, o.metric)
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	live, err := core.SeedLiveDisC(flat, r, workers)
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	u.live = live
	return u, nil
}

// Insert adds p and returns its assigned id. The affected component
// (the union of the components of p's in-range neighbours) is marked
// dirty; the published selection is unchanged until Flush.
func (u *Updater) Insert(p Point) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Insert(p)
}

// Delete retracts a live object. Its component is re-partitioned (a
// delete can split it) and every resulting part marked dirty; the
// published selection is unchanged until Flush.
func (u *Updater) Delete(id int) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Delete(id)
}

// Flush repairs every dirty component and publishes the converged
// selection, returning the number of components repaired. After Flush,
// reads see a selection identical to a from-scratch component-mode
// Select over the live points.
func (u *Updater) Flush() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Flush()
}

// Pending returns the number of components awaiting repair.
func (u *Updater) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Pending()
}

// Selection returns the ids of the last published selection in
// ascending order. Lock-free and safe for concurrent use; the slice is
// shared and must not be modified.
func (u *Updater) Selection() []int { return u.live.Selection() }

// Size returns the size of the last published selection. Lock-free.
func (u *Updater) Size() int { return u.live.Size() }

// IsRepresentative reports whether id is selected in the last published
// selection. Lock-free.
func (u *Updater) IsRepresentative(id int) bool { return u.live.IsRepresentative(id) }

// Radius returns the maintained diversification radius.
func (u *Updater) Radius() float64 { return u.live.Radius() }

// Len returns the number of live objects.
func (u *Updater) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Len()
}

// Dim returns the dimensionality of the maintained points (0 until the
// first point fixes it).
func (u *Updater) Dim() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Dim()
}

// Alive reports whether id names a live (not deleted) object.
func (u *Updater) Alive(id int) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Alive(id)
}

// Point returns a copy of the coordinates of object id (tombstoned ids
// included).
func (u *Updater) Point(id int) Point {
	u.mu.Lock()
	defer u.mu.Unlock()
	return Point(u.live.Point(id))
}

// Accesses returns the cumulative objects-examined count across
// neighbourhood queries and repairs.
func (u *Updater) Accesses() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Accesses()
}

// Verify checks the DisC invariants of the converged selection by
// direct distance computation (O(n·|S|); tests and debugging). It
// errors when repairs are pending — Flush first.
func (u *Updater) Verify() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.live.Verify()
}

// WriteSnapshot persists the updater's compacted state to the .discsnap
// format (see docs/SNAPSHOT_FORMAT.md): tombstones are squeezed out, so
// the snapshot carries the live points densely re-identified in
// ascending id order, together with the grid occupancy, the coverage
// CSR and the component labels — exactly what a coverage-graph snapshot
// written by Diversifier.WriteSnapshot after Prepare carries, so
// LoadDiversifier warm-starts from it directly.
//
// Snapshotting dirty state would persist a selection the repairs have
// already invalidated, so WriteSnapshot refuses while Pending > 0; call
// Flush first. An empty updater has nothing to persist and is refused
// too.
func (u *Updater) WriteSnapshot(w io.Writer) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p := u.live.Pending(); p > 0 {
		return fmt.Errorf("disc: snapshot: %d components pending repair; call Flush first", p)
	}
	if u.live.Len() == 0 {
		return fmt.Errorf("disc: snapshot: updater holds no live objects")
	}
	flat, _, csr, comp, err := u.live.Compact()
	if err != nil {
		return fmt.Errorf("disc: snapshot: %w", err)
	}
	g, err := grid.Build(flat, u.live.Radius())
	if err != nil {
		return fmt.Errorf("disc: snapshot: %w", err)
	}
	parts := g.Parts()
	s := &snap.Snapshot{
		Index:           IndexCoverageGraph.String(),
		Parallelism:     u.parallelism,
		Capacity:        u.capacity,
		Seed:            u.seed,
		Metric:          u.metric.Name(),
		N:               flat.Len(),
		Dim:             flat.Dim(),
		Coords:          flat.Coords(),
		Grid:            &parts,
		GraphRadius:     u.live.Radius(),
		Graph:           csr,
		ComponentCount:  comp.Count,
		ComponentLabels: comp.Label,
	}
	if err := snap.Write(w, s); err != nil {
		return fmt.Errorf("disc: snapshot: %w", err)
	}
	return nil
}
